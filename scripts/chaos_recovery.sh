#!/usr/bin/env bash
# chaos_recovery.sh — seed-pinned recovery matrix against the deployed
# daemon.
#
# Runs sciotod -recover on each survivable transport (shm: ranks are
# goroutines; ipc: ranks are OS processes over one shared mapping, and
# the injected panic genuinely kills a process) and, per scenario, kills
# worker rank 2 at a pinned operation count via the SCIOTO_FAULT_*
# environment (deterministic injection, see internal/pgas/faulty).
# Scenarios place the crash before the rank's first steal, mid-steal,
# and while deferred-dependency tasks are in flight. Each run must (a)
# actually fire the injected crash, (b) stream every submitted result
# back to the client, and (c) drain to exit 0.
#
# The in-process matrix (go test: TestRecovery* on shm+dsim, TestRunRecover,
# TestServeWorkerCrashRecovers) proves exactness; this script proves the
# same healing works in the shipped binary under env-driven injection.
# Run via `make chaos-recovery`; CI runs the same target.
#
# Op-count pinning: worker setup (dep-pool init + journal) costs ~1030
# checked ops, the first processing phase begins just above that, and the
# whole 200-task run measures ~1114 ops on rank 2 (faulty.Ops). Crash
# points must land inside TC.Process — faults in setup or control
# collectives are fatal by design.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sciotod" ./cmd/sciotod

# spin_tasks N — a JSON submission of N 50µs spin tasks.
spin_tasks() {
	python3 -c "
import json, sys
n = int(sys.argv[1])
print(json.dumps({'tenant': 'chaos', 'tasks': [{'kind': 'spin', 'arg': 50000}] * n}))
" "$1"
}

# dep_tasks N — N/2 spin tasks plus N/2 dependents, each deferred on one
# of the first half, so the crash epoch holds registered-but-pending
# deferred tasks.
dep_tasks() {
	python3 -c "
import json, sys
n = int(sys.argv[1])
half = n // 2
tasks = [{'kind': 'spin', 'arg': 50000} for _ in range(half)]
tasks += [{'kind': 'spin', 'arg': 50000, 'deps': [i]} for i in range(half)]
print(json.dumps({'tenant': 'chaos', 'tasks': tasks}))
" "$1"
}

run_scenario() {
	local tr="$1" name="$2" crash_after="$3" payload="$4" ntasks="$5"
	echo "== scenario: $tr/$name (crash rank 2 after $crash_after ops) =="
	: >"$tmp/err.log"
	SCIOTO_FAULT_SEED=21 SCIOTO_FAULT_CRASH_RANK=2 SCIOTO_FAULT_CRASH_AFTER="$crash_after" \
		"$tmp/sciotod" -transport "$tr" -procs 4 -seed 7 -recover -addr 127.0.0.1:0 \
		>"$tmp/out.log" 2>"$tmp/err.log" &
	pid=$!

	local addr=""
	for _ in $(seq 1 200); do
		addr=$(sed -n 's|.*serving http://\([^ ]*\) .*|\1|p' "$tmp/err.log" | head -1)
		[ -n "$addr" ] && break
		if ! kill -0 "$pid" 2>/dev/null; then
			echo "FAIL($name): sciotod exited before announcing the endpoint" >&2
			cat "$tmp/err.log" >&2
			exit 1
		fi
		sleep 0.05
	done
	[ -n "$addr" ] || { echo "FAIL($name): no endpoint within 10s" >&2; exit 1; }

	local id
	id=$(echo "$payload" | curl -sf "http://$addr/v1/submit" -d @- | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')

	local results
	results=$(curl -sfN "http://$addr/v1/submissions/$id/stream" | python3 -c "
import json, sys
n, done = 0, None
for line in sys.stdin:
    ev = json.loads(line)
    if ev.get('result'):
        n += 1
    if ev.get('done'):
        done = ev['done']
        break
assert done is not None, 'stream ended without a done line'
assert done['completed'] == $ntasks, f'completed {done[\"completed\"]}, want $ntasks'
print(n)
")
	if [ "$results" != "$ntasks" ]; then
		echo "FAIL($name): streamed $results results, want $ntasks" >&2
		cat "$tmp/err.log" >&2
		exit 1
	fi

	kill -TERM "$pid"
	if ! wait "$pid"; then
		echo "FAIL($name): sciotod exited nonzero after drain" >&2
		cat "$tmp/err.log" >&2
		exit 1
	fi
	pid=""

	if ! grep -q "injected-crash" "$tmp/err.log"; then
		echo "FAIL($name): pinned crash never fired; the run exercised no recovery (re-pin CRASH_AFTER)" >&2
		cat "$tmp/err.log" >&2
		exit 1
	fi
	echo "ok: $ntasks results streamed across the crash, clean drain"
}

# The op pins hold on both transports: faulty counts rank 2's own
# checked operations, and the setup sequence (dep-pool init + journal)
# that dominates the count is identical core code on shm and ipc.
for tr in shm ipc; do
	run_scenario "$tr" "crash-before-steal" 1040 "$(spin_tasks 200)" 200
	run_scenario "$tr" "crash-mid-steal" 1060 "$(spin_tasks 200)" 200
	run_scenario "$tr" "crash-with-deferred-deps" 1060 "$(dep_tasks 200)" 200
done

echo "PASS: recovery matrix (2 transports x 3 scenarios, seed-pinned SCIOTO_FAULT_*)"
