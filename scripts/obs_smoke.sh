#!/usr/bin/env bash
# obs_smoke.sh — end-to-end smoke test of the observability layer.
#
# Runs UTS on the shm transport with the live endpoint and trace dumps
# enabled, scrapes /metrics and /healthz while the run is in flight, then
# merges the per-rank dumps with sciototrace, checks the Chrome trace is
# non-trivial, and runs `sciototrace -report` on the same 2-rank merge:
# the attribution report must name a top bottleneck and keep every
# rank's occupancy fractions disjoint (busy + idle == 1 per rank).
#
# Run via `make obs-smoke`; CI runs the same target and, when
# SCIOTO_OBS_OUT is set, the merged Chrome trace and attribution report
# are copied there for artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/uts" ./cmd/uts
go build -o "$tmp/sciototrace" ./cmd/sciototrace

# -nodecost stretches the run into the seconds range so the mid-run
# scrape has a live server to hit (shm spins real time per node).
"$tmp/uts" -transport shm -procs 2 -depth 9 -nodecost 2ms \
	-obs 127.0.0.1:0 -trace-dir "$tmp/traces" \
	>"$tmp/out.log" 2>"$tmp/err.log" &
pid=$!

# The runner announces the ephemeral endpoint on stderr:
#   scioto: obs endpoint rank N serving http://HOST:PORT/metrics
addr=""
for _ in $(seq 1 200); do
	addr=$(sed -n 's|.*serving http://\([^/]*\)/metrics.*|\1|p' "$tmp/err.log" | head -1)
	[ -n "$addr" ] && break
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "FAIL: uts exited before announcing the endpoint" >&2
		cat "$tmp/err.log" >&2
		exit 1
	fi
	sleep 0.05
done
if [ -z "$addr" ]; then
	echo "FAIL: no endpoint announcement within 10s" >&2
	cat "$tmp/err.log" >&2
	exit 1
fi

curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt"
grep -q 'scioto_pgas_op_latency_seconds' "$tmp/metrics.txt" ||
	{ echo "FAIL: /metrics has no pgas op histograms" >&2; exit 1; }
grep -q '^# TYPE scioto_pgas_bytes_total counter' "$tmp/metrics.txt" ||
	{ echo "FAIL: /metrics has no byte counters" >&2; exit 1; }
curl -fsS "http://$addr/healthz" | grep -q '"status":"ok"' ||
	{ echo "FAIL: /healthz not ok" >&2; exit 1; }

wait "$pid"
pid=""
grep -q 'verified' "$tmp/out.log" ||
	{ echo "FAIL: uts run did not verify" >&2; cat "$tmp/out.log" >&2; exit 1; }

for rank in 0000 0001; do
	[ -s "$tmp/traces/trace-rank$rank.json" ] ||
		{ echo "FAIL: missing trace dump for rank $rank" >&2; exit 1; }
done

"$tmp/sciototrace" -o "$tmp/merged.json" "$tmp/traces"
grep -q '"name":"exec"' "$tmp/merged.json" ||
	{ echo "FAIL: merged trace has no exec spans" >&2; exit 1; }
grep -q '"name":"steal"' "$tmp/merged.json" ||
	{ echo "FAIL: merged trace has no steal spans" >&2; exit 1; }
grep -q '"cat":"occ"' "$tmp/merged.json" ||
	{ echo "FAIL: merged trace has no occupancy spans" >&2; exit 1; }

# Attribution report on the same merge: must parse, cover both ranks,
# and keep each rank's resource fractions disjoint (sum + idle == 1).
"$tmp/sciototrace" -report -o "$tmp/attrib.json" "$tmp/traces" 2>"$tmp/attrib.log"
python3 - "$tmp/attrib.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    rep = json.load(f)
if len(rep["ranks"]) != 2:
    sys.exit(f"FAIL: attribution covers {len(rep['ranks'])} ranks, want 2")
win = rep["window_end_ns"] - rep["window_start_ns"]
if win <= 0:
    sys.exit("FAIL: attribution window is empty")
for r in rep["ranks"]:
    s = sum(b["fraction"] for b in r["busy"]) + r["idle_fraction"]
    if not (0.999 <= s <= 1.001):
        sys.exit(f"FAIL: rank {r['rank']} fractions sum to {s:.4f}, want 1")
    if not any(b["resource"] == "task_exec" and b["ns"] > 0 for b in r["busy"]):
        sys.exit(f"FAIL: rank {r['rank']} charged no task_exec time")
top = (rep.get("bottlenecks") or [{}])[0].get("resource", "<none>")
print(f"attribution OK: window {win} ns, top bottleneck {top}")
EOF

# Export artifacts for CI upload when asked.
if [ -n "${SCIOTO_OBS_OUT:-}" ]; then
	mkdir -p "$SCIOTO_OBS_OUT"
	cp "$tmp/merged.json" "$tmp/attrib.json" "$SCIOTO_OBS_OUT/"
fi

echo "obs smoke: live scrape + 2-rank trace merge + attribution OK (endpoint $addr)"
