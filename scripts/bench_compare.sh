#!/usr/bin/env bash
# bench_compare.sh — regression gate for the checked-in perf artifacts.
#
# Serve: re-runs `sciotobench -exp serve -json` and compares the measured
# p95 latency and sustained tasks/s against the checked-in
# BENCH_serve.json baseline, failing when either drifts outside the
# allowed band (SCIOTO_BENCH_BAND, default 0.15 = ±15%). Cells recorded
# as "-" in the baseline are not compared.
#
# Transports: re-runs `sciotobench -exp transports -json` and compares
# the Remote Steal row of BENCH_transport.json per transport. Wall-clock
# latency on a shared runner is far noisier than throughput, so the band
# is wide (SCIOTO_BENCH_TRANSPORT_BAND, default 1.0 = 2x) and the real
# gate is the ordering invariant: the fresh ipc Remote Steal must stay
# strictly below the fresh tcp Remote Steal — the zero-copy transport
# losing its order-of-magnitude edge over sockets fails regardless of
# drift against the baseline.
#
# Machine metadata: every BENCH_*.json carries the producing host's
# GOMAXPROCS/NumCPU/GOOS/GOARCH/go version. A mismatch against the
# current host does not fail the gate (the bands are meant to absorb
# runner variance) but warns loudly, because cross-machine drift is not
# a regression signal.
#
# On a band failure the script additionally runs a deterministic 2-rank
# dsim UTS trace, produces the attribution report with `sciototrace
# -report`, and diffs it against the checked-in BENCH_attrib.json so the
# failure log says *which resource's occupancy moved*, not just that a
# wall-clock number did.
#
# Run via `make bench-compare`; CI runs the same target after the
# recovery matrix so a healing-path change that taxes a steady-state hot
# path is caught in the same PR.
set -euo pipefail
cd "$(dirname "$0")/.."

band="${SCIOTO_BENCH_BAND:-0.15}"
tband="${SCIOTO_BENCH_TRANSPORT_BAND:-1.0}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# machine_check FRESH BASELINE — loud (but non-fatal) warning when the
# artifact was recorded on a different machine than the current host.
machine_check() {
	python3 - "$1" "$2" <<'EOF'
import json, sys

fresh_path, base_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    fresh = json.load(f).get("machine") or {}
with open(base_path) as f:
    base = json.load(f).get("machine") or {}

if not base:
    print(f"WARNING: {base_path} has no machine block; regenerate it with "
          "`sciotobench -json` to record the baseline host", file=sys.stderr)
elif base != fresh:
    diffs = [f"{k}: baseline {base.get(k, '?')} vs here {fresh.get(k, '?')}"
             for k in sorted(set(base) | set(fresh)) if base.get(k) != fresh.get(k)]
    print("=" * 72, file=sys.stderr)
    print(f"WARNING: {base_path} was recorded on a DIFFERENT MACHINE:",
          file=sys.stderr)
    for d in diffs:
        print("  " + d, file=sys.stderr)
    print("  absolute comparisons below are not apples-to-apples; trust the",
          file=sys.stderr)
    print("  ordering invariants, re-record baselines on this host to reset.",
          file=sys.stderr)
    print("=" * 72, file=sys.stderr)
EOF
}

fail=0

go run ./cmd/sciotobench -exp serve -json >"$tmp/fresh.json"
machine_check "$tmp/fresh.json" BENCH_serve.json

python3 - "$tmp/fresh.json" BENCH_serve.json "$band" <<'EOF' || fail=1
import json, re, sys

fresh_path, base_path, band = sys.argv[1], sys.argv[2], float(sys.argv[3])

UNITS = {"ns": 1, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}

def value(cell):
    """Parse a table cell to a comparable float (durations in ns), or
    None for unparseable/absent cells."""
    cell = cell.strip()
    if cell in ("", "-"):
        return None
    m = re.fullmatch(r"([0-9.]+)(ns|µs|us|ms|s)", cell)
    if m:
        return float(m.group(1)) * UNITS[m.group(2)]
    try:
        return float(cell)
    except ValueError:
        return None

def rows(doc):
    out = {}
    for table in doc["tables"]:
        if table["ID"] != "serve":
            continue
        cols = table["Columns"]
        for row in table["Rows"]:
            out[row[0]] = dict(zip(cols, row))
    return out

with open(fresh_path) as f:
    fresh = rows(json.load(f))
with open(base_path) as f:
    base = rows(json.load(f))

failures = []
checked = 0
for scenario, brow in base.items():
    frow = fresh.get(scenario)
    if frow is None:
        failures.append(f"{scenario}: missing from fresh run")
        continue
    for col in ("p95", "tasks/s"):
        want = value(brow.get(col, "-"))
        if want is None:
            continue
        got = value(frow.get(col, "-"))
        if got is None:
            failures.append(f"{scenario} {col}: baseline {brow[col]} but fresh run has no value")
            continue
        checked += 1
        # Only regressions fail: slower p95 (higher) or lower tasks/s.
        worse = got / want if col == "p95" else want / got
        verdict = "ok" if worse <= 1 + band else "REGRESSION"
        print(f"{scenario} {col}: baseline {brow[col]}, fresh {frow[col]} ({verdict})")
        if worse > 1 + band:
            failures.append(
                f"{scenario} {col}: {frow[col]} vs baseline {brow[col]} "
                f"({(worse - 1) * 100:.1f}% worse, band ±{band * 100:.0f}%)")

if checked == 0:
    failures.append("no comparable cells found: baseline and fresh tables do not overlap")
if failures:
    print("FAIL: serve benchmark outside the regression band:", file=sys.stderr)
    for f in failures:
        print("  " + f, file=sys.stderr)
    sys.exit(1)
print(f"PASS: {checked} cells within ±{band * 100:.0f}% of BENCH_serve.json")
EOF

go run ./cmd/sciotobench -exp transports -json >"$tmp/transports.json"
machine_check "$tmp/transports.json" BENCH_transport.json

python3 - "$tmp/transports.json" BENCH_transport.json "$tband" <<'EOF' || fail=1
import json, sys

fresh_path, base_path, band = sys.argv[1], sys.argv[2], float(sys.argv[3])

def steal_row(doc):
    """The Remote Steal row of the transports table as {transport: µs}."""
    for table in doc["tables"]:
        if table["ID"] != "transports":
            continue
        cols = table["Columns"]
        for row in table["Rows"]:
            if row[0] == "Remote Steal":
                return {c: float(v) for c, v in zip(cols[1:], row[1:])}
    return None

with open(fresh_path) as f:
    fresh = steal_row(json.load(f))
with open(base_path) as f:
    base = steal_row(json.load(f))

failures = []
if fresh is None:
    failures.append("fresh run has no transports table with a Remote Steal row")
if base is None:
    failures.append("BENCH_transport.json has no transports table with a Remote Steal row")

if not failures:
    for tr in ("shm", "ipc", "tcp"):
        want, got = base.get(tr), fresh.get(tr)
        if want is None or got is None:
            failures.append(f"Remote Steal {tr}: missing column")
            continue
        worse = got / want
        verdict = "ok" if worse <= 1 + band else "REGRESSION"
        print(f"Remote Steal {tr}: baseline {want:.4f}µs, fresh {got:.4f}µs ({verdict})")
        if worse > 1 + band:
            failures.append(
                f"Remote Steal {tr}: {got:.4f}µs vs baseline {want:.4f}µs "
                f"({(worse - 1) * 100:.0f}% worse, band +{band * 100:.0f}%)")
    # The invariant the artifact exists to guard: the zero-copy ipc
    # transport must beat loopback tcp on the steal path, whatever the
    # host. Both numbers come from the same fresh run, so this check is
    # immune to baseline staleness and runner speed.
    if fresh["ipc"] >= fresh["tcp"]:
        failures.append(
            f"ordering inverted: ipc Remote Steal {fresh['ipc']:.4f}µs >= tcp {fresh['tcp']:.4f}µs")

if failures:
    print("FAIL: transport benchmark outside the regression gate:", file=sys.stderr)
    for f in failures:
        print("  " + f, file=sys.stderr)
    sys.exit(1)
print(f"PASS: Remote Steal within +{band * 100:.0f}% of BENCH_transport.json, ipc < tcp holds")
EOF

if [ "$fail" != 0 ]; then
	# A band tripped: attribute the drift. The dsim transport runs in
	# virtual time, so this 2-rank UTS trace and its report are
	# bit-reproducible on any host — any diff against the checked-in
	# BENCH_attrib.json is a real behavior change (a resource's occupancy
	# or the critical path moved), not runner noise.
	echo "band failure: attributing against BENCH_attrib.json ..." >&2
	if [ -f BENCH_attrib.json ]; then
		go run ./cmd/uts -transport dsim -procs 2 -depth 8 \
			-trace-dir "$tmp/attrib-traces" >/dev/null
		go run ./cmd/sciototrace -report -o "$tmp/attrib.json" "$tmp/attrib-traces"
		if diff -u BENCH_attrib.json "$tmp/attrib.json" >&2; then
			echo "attribution unchanged: the drift is outside the modeled resources" \
				"(host noise or an unmodeled path)" >&2
		else
			echo "attribution CHANGED (diff above): the moved resource is the" \
				"place to look first" >&2
		fi
	else
		echo "no BENCH_attrib.json baseline checked in; skipping attribution diff" >&2
	fi
	exit 1
fi
