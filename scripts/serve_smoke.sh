#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of serve mode (sciotod).
#
# Brings sciotod up on shm, drives it with 8 concurrent clients that each
# submit a batch and stream every result back, checks admission control
# refuses an over-limit batch with 429, then SIGTERMs the daemon and
# requires a clean drain (exit 0). Run via `make serve-smoke`; CI runs
# the same target.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sciotod" ./cmd/sciotod

"$tmp/sciotod" -procs 4 -addr 127.0.0.1:0 -max-pending 64 \
	>"$tmp/out.log" 2>"$tmp/err.log" &
pid=$!

# The daemon announces the ephemeral endpoint on stderr:
#   sciotod: serving http://HOST:PORT (procs N)
addr=""
for _ in $(seq 1 200); do
	addr=$(sed -n 's|.*serving http://\([^ ]*\) .*|\1|p' "$tmp/err.log" | head -1)
	[ -n "$addr" ] && break
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "FAIL: sciotod exited before announcing the endpoint" >&2
		cat "$tmp/err.log" >&2
		exit 1
	fi
	sleep 0.05
done
if [ -z "$addr" ]; then
	echo "FAIL: no endpoint announcement within 10s" >&2
	cat "$tmp/err.log" >&2
	exit 1
fi
base="http://$addr"

curl -fsS "$base/v1/healthz" | grep -q '"status":"serving"' ||
	{ echo "FAIL: /v1/healthz not serving" >&2; exit 1; }

# 8 concurrent clients, 10 tasks each, every result streamed back. fib
# results are checked by content (fib(20) = 6765 in base64: "Njc2NQ==").
batch='{"tasks":[
  {"kind":"fib","arg":20},{"kind":"echo","payload":"cGluZw=="},
  {"kind":"fib","arg":20},{"kind":"spin","arg":1000},
  {"kind":"fib","arg":20},{"kind":"echo","payload":"cGluZw=="},
  {"kind":"fib","arg":20},{"kind":"spin","arg":1000},
  {"kind":"fib","arg":20},{"kind":"fib","arg":20,"deps":[0,8]}]}'
for c in $(seq 1 8); do
	(
		id=$(curl -fsS "$base/v1/submit" -d "$batch" | sed -n 's|.*"id":"\([^"]*\)".*|\1|p')
		[ -n "$id" ] || { echo "FAIL: client $c got no submission id" >&2; exit 1; }
		curl -fsSN "$base/v1/submissions/$id/stream" >"$tmp/stream.$c"
	) &
done
wait $(jobs -p | grep -v "^$pid\$") || { echo "FAIL: a client failed" >&2; cat "$tmp/err.log" >&2; exit 1; }

for c in $(seq 1 8); do
	results=$(grep -c '"result"' "$tmp/stream.$c" || true)
	[ "$results" -eq 10 ] ||
		{ echo "FAIL: client $c streamed $results results, want 10" >&2; cat "$tmp/stream.$c" >&2; exit 1; }
	grep -q '"done".*"state":"done"' "$tmp/stream.$c" ||
		{ echo "FAIL: client $c stream has no done line" >&2; exit 1; }
	fibs=$(grep -o 'Njc2NQ==' "$tmp/stream.$c" | wc -l)
	[ "$fibs" -eq 6 ] ||
		{ echo "FAIL: client $c got $fibs fib(20) results, want 6" >&2; exit 1; }
done

# Admission control: a batch larger than -max-pending must get 429.
big=$(python3 - <<'EOF' 2>/dev/null || printf '{"tasks":[%s{"kind":"echo"}]}' "$(for i in $(seq 1 64); do printf '{"kind":"echo"},'; done)"
import json
print(json.dumps({"tasks": [{"kind": "echo"}] * 65}))
EOF
)
code=$(curl -s -o "$tmp/429.json" -w '%{http_code}' "$base/v1/submit" -d "$big")
[ "$code" = "429" ] ||
	{ echo "FAIL: over-limit batch got HTTP $code, want 429" >&2; cat "$tmp/429.json" >&2; exit 1; }
grep -q 'retry_after_ms' "$tmp/429.json" ||
	{ echo "FAIL: 429 body has no retry_after_ms" >&2; exit 1; }

# Graceful drain: SIGTERM, exit 0, drained log line.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] ||
	{ echo "FAIL: sciotod exited $rc after SIGTERM, want 0" >&2; cat "$tmp/err.log" >&2; exit 1; }
grep -q 'drained' "$tmp/err.log" ||
	{ echo "FAIL: no drain log line" >&2; cat "$tmp/err.log" >&2; exit 1; }

echo "serve smoke: 8 clients x 10 results + 429 backpressure + clean SIGTERM drain OK (endpoint $addr)"
