// Sciotolint enforces the Scioto runtime's PGAS and split-queue invariants
// that the Go type system cannot express. It bundles six analyzers:
//
//	collective  — collective Proc calls (AllocData, AllocWords, AllocLock,
//	              Barrier, World.Run) reached only under a rank-conditional
//	              branch: the classic SPMD mismatched-collective deadlock.
//	relaxedword — RelaxedLoad64/RelaxedStore64 on a metadata word that
//	              remote processes write (wBottom, wDirty): relaxed access
//	              is only legal on owner-private words.
//	lockbalance — p.Lock(proc, id) with a path out of the function that
//	              lacks a matching Unlock: PGAS locks are non-reentrant and
//	              a leaked lock deadlocks the next acquirer.
//	nbcomplete  — an issued non-blocking op (NbGet, NbPut, NbLoad64,
//	              NbStore64, NbFetchAdd64) whose handle is never completed
//	              with Wait or Flush before a return or an Unlock: results
//	              are undefined until completion.
//	localescape — a p.Local(seg) slice stored in a struct field or package
//	              variable, captured by a goroutine, or used across a
//	              Barrier: the slice is only safe inside the protocol
//	              window in which it was obtained.
//	procescape  — a pgas.Proc handed to another goroutine or stored in a
//	              package variable: a Proc is bound to the goroutine that
//	              received it from World.Run.
//
// Usage:
//
//	go run ./tools/sciotolint ./...          # standalone, analyzes tests too
//	go vet -vettool=$(which sciotolint) ./...  # as a vet tool
//
// Findings are suppressed with a justified staticcheck-style directive on
// or directly above the offending line:
//
//	//lint:ignore relaxedword wBottom is read as a hint and revalidated under the lock
//
// A directive without a justification is itself reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scioto/tools/sciotolint/analysis"
	"scioto/tools/sciotolint/checkers"
)

func main() {
	args := os.Args[1:]

	// go vet tool protocol: `tool -V=full`, `tool -flags`, then
	// `tool <unit>.cfg` once per package.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		analysis.VersionFlag(args[0])
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no tool flags beyond the protocol
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		findings, err := analysis.UnitCheck(args[0], checkers.Analyzers)
		exit(findings, err)
	}

	fs := flag.NewFlagSet("sciotolint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	tests := fs.Bool("tests", true, "also analyze _test.go files")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sciotolint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		for _, a := range checkers.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns, *tests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sciotolint: %v\n", err)
		os.Exit(1)
	}
	var findings []string
	for _, pkg := range pkgs {
		out, err := analysis.RunAnalyzers(pkg, checkers.Analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sciotolint: %v\n", err)
			os.Exit(1)
		}
		findings = append(findings, out...)
	}
	exit(findings, nil)
}

func exit(findings []string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sciotolint: %v\n", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
