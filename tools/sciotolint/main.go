// Sciotolint enforces the Scioto runtime's PGAS and split-queue invariants
// that the Go type system cannot express. It bundles ten analyzers; six
// are per-package:
//
//	collective  — collective Proc calls (AllocData, AllocWords, AllocLock,
//	              Barrier, World.Run) reached only under a rank-conditional
//	              branch: the classic SPMD mismatched-collective deadlock.
//	relaxedword — RelaxedLoad64/RelaxedStore64 on a metadata word that
//	              remote processes write (wBottom, wDirty): relaxed access
//	              is only legal on owner-private words.
//	lockbalance — p.Lock(proc, id) with a path out of the function that
//	              lacks a matching Unlock: PGAS locks are non-reentrant and
//	              a leaked lock deadlocks the next acquirer.
//	nbcomplete  — an issued non-blocking op (NbGet, NbPut, NbLoad64,
//	              NbStore64, NbFetchAdd64) whose handle is never completed
//	              with Wait or Flush before a return or an Unlock: results
//	              are undefined until completion.
//	localescape — a p.Local(seg) slice stored in a struct field or package
//	              variable, captured by a goroutine, or used across a
//	              Barrier: the slice is only safe inside the protocol
//	              window in which it was obtained.
//	procescape  — a pgas.Proc handed to another goroutine or stored in a
//	              package variable: a Proc is bound to the goroutine that
//	              received it from World.Run.
//	noallocgate — a //scioto:noalloc-annotated function (the steal/insert
//	              hot paths) in which the compiler's escape analysis
//	              places a heap allocation: the static form of the
//	              zero-allocs-per-steal gate, naming the exact line.
//
// and three are whole-program, propagating facts through an
// interprocedural call graph over every package at once:
//
//	collcongruence — a call chain that reaches a collective operation
//	              under control flow conditioned (possibly through
//	              parameters and helper returns) on the process rank: the
//	              interprocedural form of the SPMD divergence deadlock.
//	lockorder   — a cycle in the interprocedural PGAS lock-acquisition
//	              order graph: two ranks acquiring the same lock classes
//	              in opposite orders deadlock without either function
//	              being locally wrong.
//	obsdeterminism — obs instrument registration reached under
//	              rank-dependent control flow or map iteration: the
//	              schema-hashed cross-rank Merger requires every rank to
//	              register the same instruments in the same order.
//
// Usage:
//
//	go run ./tools/sciotolint ./...            # standalone, all ten analyzers
//	go run ./tools/sciotolint -json ./...      # findings as a JSON array on stdout
//	go vet -vettool=$(which sciotolint) ./...  # as a vet tool (per-package analyzers)
//
// Findings are suppressed with a justified staticcheck-style directive on
// or directly above the offending line:
//
//	//lint:ignore relaxedword wBottom is read as a hint and revalidated under the lock
//
// A directive without a justification is itself reported, and so is a
// stale directive that suppresses no diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scioto/tools/sciotolint/analysis"
	"scioto/tools/sciotolint/checkers"
)

func main() {
	args := os.Args[1:]

	// go vet tool protocol: `tool -V=full`, `tool -flags`, then
	// `tool <unit>.cfg` once per package.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		analysis.VersionFlag(args[0])
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no tool flags beyond the protocol
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		findings, err := analysis.UnitCheck(args[0], checkers.Analyzers)
		exit(findings, "", false, err)
	}

	fs := flag.NewFlagSet("sciotolint", flag.ExitOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	tests := fs.Bool("tests", true, "also analyze _test.go files")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout instead of text on stderr")
	outFile := fs.String("o", "", "also write findings as JSON to this file (text still goes to stderr)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sciotolint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		for _, a := range checkers.Analyzers {
			scope := "package"
			if a.RunProgram != nil {
				scope = "program"
			}
			fmt.Printf("%-14s [%s] %s\n", a.Name, scope, firstLine(a.Doc))
		}
		return
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns, *tests)
	if err != nil {
		fatal(err)
	}
	findings, err := analysis.RunAll(pkgs, checkers.Analyzers)
	if err != nil {
		fatal(err)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fatal(err)
		}
		if err := analysis.WriteJSON(f, findings); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	exit(findings, *outFile, *jsonOut, nil)
}

func exit(findings []analysis.Finding, outFile string, jsonOut bool, err error) {
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		if err := analysis.WriteJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if len(findings) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sciotolint: %v\n", err)
	os.Exit(1)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
