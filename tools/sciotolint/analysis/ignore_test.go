package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const ignoreSrc = `package p

func a() {
	//lint:ignore relaxedword the hint is revalidated under the lock
	x := 1
	_ = x
}

func b() {
	y := 2 //lint:ignore lockbalance,collective trailing directive covers its own line
	_ = y
}

func c() {
	//lint:ignore relaxedword
	z := 3
	_ = z
}
`

// posOn returns a Pos on the given 1-based line of the parsed file.
func posOn(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestIgnoreDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_fixture.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ig := BuildIgnores(fset, []*ast.File{f})

	relaxed := &Analyzer{Name: "relaxedword"}
	lockbal := &Analyzer{Name: "lockbalance"}
	coll := &Analyzer{Name: "collective"}

	// Directive on line 4 suppresses relaxedword on line 5 but not other
	// analyzers and not other lines.
	if !ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 5), Analyzer: relaxed}) {
		t.Error("directive above the line did not suppress relaxedword")
	}
	if ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 5), Analyzer: lockbal}) {
		t.Error("directive suppressed an analyzer it does not name")
	}
	if ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 6), Analyzer: relaxed}) {
		t.Error("directive leaked past the line below it")
	}

	// Trailing directive on line 10 suppresses both named analyzers on its
	// own line.
	if !ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 10), Analyzer: lockbal}) {
		t.Error("trailing directive did not suppress lockbalance")
	}
	if !ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 10), Analyzer: coll}) {
		t.Error("trailing directive did not suppress second named analyzer")
	}

	// The justification-free directive on line 15 is inert and reported.
	if ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 16), Analyzer: relaxed}) {
		t.Error("directive without justification suppressed a finding")
	}
	problems := ig.Problems(fset)
	if len(problems) != 1 || !strings.Contains(problems[0].Message, "malformed") {
		t.Errorf("Problems() = %v, want one malformed-directive report", problems)
	}
	if problems[0].Analyzer != "ignore" || problems[0].Line != 15 {
		t.Errorf("Problems()[0] = %+v, want analyzer %q on line 15", problems[0], "ignore")
	}

	// Both well-formed directives suppressed something above, so neither
	// is stale (the malformed one is excluded from staleness by design).
	if stale := ig.Stale(fset); len(stale) != 0 {
		t.Errorf("Stale() = %v, want none (every well-formed directive was used)", stale)
	}
}

func TestStaleDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "stale_fixture.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ig := BuildIgnores(fset, []*ast.File{f})

	// Consult only one of the two well-formed directives.
	relaxed := &Analyzer{Name: "relaxedword"}
	if !ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 5), Analyzer: relaxed}) {
		t.Fatal("setup: directive did not suppress")
	}

	stale := ig.Stale(fset)
	if len(stale) != 1 {
		t.Fatalf("Stale() = %v, want exactly the unused directive on line 10", stale)
	}
	if stale[0].Line != 10 || !strings.Contains(stale[0].Message, "stale") ||
		!strings.Contains(stale[0].Message, "collective,lockbalance") {
		t.Errorf("Stale()[0] = %+v, want a stale report naming collective,lockbalance on line 10", stale[0])
	}
}
