package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const ignoreSrc = `package p

func a() {
	//lint:ignore relaxedword the hint is revalidated under the lock
	x := 1
	_ = x
}

func b() {
	y := 2 //lint:ignore lockbalance,collective trailing directive covers its own line
	_ = y
}

func c() {
	//lint:ignore relaxedword
	z := 3
	_ = z
}
`

// posOn returns a Pos on the given 1-based line of the parsed file.
func posOn(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestIgnoreDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignore_fixture.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ig := BuildIgnores(fset, []*ast.File{f})

	relaxed := &Analyzer{Name: "relaxedword"}
	lockbal := &Analyzer{Name: "lockbalance"}
	coll := &Analyzer{Name: "collective"}

	// Directive on line 4 suppresses relaxedword on line 5 but not other
	// analyzers and not other lines.
	if !ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 5), Analyzer: relaxed}) {
		t.Error("directive above the line did not suppress relaxedword")
	}
	if ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 5), Analyzer: lockbal}) {
		t.Error("directive suppressed an analyzer it does not name")
	}
	if ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 6), Analyzer: relaxed}) {
		t.Error("directive leaked past the line below it")
	}

	// Trailing directive on line 10 suppresses both named analyzers on its
	// own line.
	if !ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 10), Analyzer: lockbal}) {
		t.Error("trailing directive did not suppress lockbalance")
	}
	if !ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 10), Analyzer: coll}) {
		t.Error("trailing directive did not suppress second named analyzer")
	}

	// The justification-free directive on line 15 is inert and reported.
	if ig.Suppressed(fset, Diagnostic{Pos: posOn(fset, 16), Analyzer: relaxed}) {
		t.Error("directive without justification suppressed a finding")
	}
	problems := ig.Problems(fset)
	if len(problems) != 1 || !strings.Contains(problems[0], "malformed") {
		t.Errorf("Problems() = %v, want one malformed-directive report", problems)
	}
}
