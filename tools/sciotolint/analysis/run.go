package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// RunAll is the standalone driver's pipeline: it applies every
// per-package analyzer to every package, builds the whole-program call
// graph over the non-test packages and applies the program analyzers,
// then filters //lint:ignore'd findings through one global directive
// index, reports malformed and stale directives, dedupes, and sorts by
// (file, line, col, analyzer) for stable CI diffs.
//
// Stale-directive detection only happens here: this is the only driver
// that runs the complete analyzer suite, so "suppressed nothing" is
// meaningful. The vet-tool driver (RunAnalyzers via UnitCheck) sees one
// package at a time without the program analyzers and must not declare a
// directive stale that a program analyzer would have used.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset

	type attributed struct {
		d       Diagnostic
		forTest string
	}
	var diags []attributed

	for _, pkg := range pkgs {
		pkg := pkg
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a := a
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Build:     pkg.Build,
				ForTest:   pkg.ForTest != "",
				Report: func(d Diagnostic) {
					d.Analyzer = a
					diags = append(diags, attributed{d, pkg.ForTest})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.ImportPath, a.Name, err)
			}
		}
	}

	// Whole-program analyzers see the base packages only: a test variant
	// re-declares every non-test function of its base package under the
	// same key, which would double the call graph. Test-only code is still
	// covered by the per-package analyzers above.
	var base []*Package
	for _, pkg := range pkgs {
		if pkg.ForTest == "" {
			base = append(base, pkg)
		}
	}
	prog := NewProgram(base)
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		a := a
		pass := &ProgramPass{
			Analyzer: a,
			Prog:     prog,
			Report: func(d Diagnostic) {
				d.Analyzer = a
				diags = append(diags, attributed{d, ""})
			},
		}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}

	// One directive index over every distinct file. Base and test-variant
	// packages parse the same sources into distinct ASTs; directives are
	// keyed by file:line, so each file contributes once.
	seenFile := make(map[string]bool)
	var files []*ast.File
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			if !seenFile[name] {
				seenFile[name] = true
				files = append(files, f)
			}
		}
	}
	ignores := BuildIgnores(fset, files)

	var out []Finding
	seen := make(map[Finding]bool)
	for _, ad := range diags {
		if ignores.Suppressed(fset, ad.d) {
			continue
		}
		// Test-variant packages re-analyze the base package's non-test
		// files; only findings in _test.go files are new there.
		posn := fset.Position(ad.d.Pos)
		if ad.forTest != "" && !strings.HasSuffix(posn.Filename, "_test.go") {
			continue
		}
		f := findingAt(fset, ad.d.Pos, ad.d.Analyzer.Name, ad.d.Message)
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	out = append(out, ignores.Problems(fset)...)
	out = append(out, ignores.Stale(fset)...)
	SortFindings(out)
	return out, nil
}

// RunAnalyzers applies the per-package analyzers to one package, filters
// //lint:ignore'd findings, and returns the surviving findings plus any
// malformed-directive problems, sorted by (file, line, col, analyzer).
// This is the vet-tool (unitchecker) path; whole-program analyzers and
// stale-directive detection need RunAll.
//
// For test-variant packages (ForTest != "") only findings in _test.go
// files are kept: the non-test files of the variant are the same sources
// already analyzed in the base package, and reporting them twice would
// duplicate every finding.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Build:     pkg.Build,
			ForTest:   pkg.ForTest != "",
			Report: func(d Diagnostic) {
				d.Analyzer = a
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.ImportPath, a.Name, err)
		}
	}

	ignores := BuildIgnores(pkg.Fset, pkg.Files)
	var out []Finding
	seen := make(map[Finding]bool)
	for _, d := range diags {
		if ignores.Suppressed(pkg.Fset, d) {
			continue
		}
		posn := pkg.Fset.Position(d.Pos)
		if pkg.ForTest != "" && !strings.HasSuffix(posn.Filename, "_test.go") {
			continue
		}
		f := findingAt(pkg.Fset, d.Pos, d.Analyzer.Name, d.Message)
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	out = append(out, ignores.Problems(pkg.Fset)...)
	SortFindings(out)
	return out, nil
}
