package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// RunAnalyzers applies every analyzer to pkg, filters //lint:ignore'd
// findings, and returns the surviving diagnostics formatted as
// "file:line:col: message (analyzer)", sorted by position, plus any
// malformed-directive problems.
//
// For test-variant packages (ForTest != "") only findings in _test.go
// files are kept: the non-test files of the variant are the same sources
// already analyzed in the base package, and reporting them twice would
// duplicate every finding.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]string, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				d.Analyzer = a
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %v", pkg.ImportPath, a.Name, err)
		}
	}

	ignores := BuildIgnores(pkg.Fset, pkg.Files)
	var out []string
	seen := make(map[string]bool)
	for _, d := range diags {
		if ignores.Suppressed(pkg.Fset, d) {
			continue
		}
		posn := pkg.Fset.Position(d.Pos)
		if pkg.ForTest != "" && !strings.HasSuffix(posn.Filename, "_test.go") {
			continue
		}
		line := fmt.Sprintf("%s: %s (%s)", posn, d.Message, d.Analyzer.Name)
		if !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
	}
	out = append(out, ignores.Problems(pkg.Fset)...)
	sort.Slice(out, func(i, j int) bool { return posLess(out[i], out[j]) })
	return out, nil
}

// posLess orders "file:line:col: ..." strings by file, then numerically by
// line and column.
func posLess(a, b string) bool {
	fa, la, ca := splitPos(a)
	fb, lb, cb := splitPos(b)
	if fa != fb {
		return fa < fb
	}
	if la != lb {
		return la < lb
	}
	return ca < cb
}

func splitPos(s string) (file string, line, col int) {
	parts := strings.SplitN(s, ":", 4)
	if len(parts) < 3 {
		return s, 0, 0
	}
	fmt.Sscanf(parts[1], "%d", &line)
	fmt.Sscanf(parts[2], "%d", &col)
	return parts[0], line, col
}
