package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
)

// go vet -vettool support (a minimal stand-in for
// golang.org/x/tools/go/analysis/unitchecker).
//
// The go command invokes a vet tool once per package with a single
// argument, the path to a JSON config file describing the compilation
// unit: source files, the import map, and the export data files of every
// dependency (already produced by the build cache). The tool type-checks
// the unit, runs its analyzers, prints findings to stderr, writes an
// (empty — we have no facts) .vetx facts file, and exits 2 when it found
// anything.

// vetConfig mirrors the config JSON written by cmd/go for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VersionFlag handles the `-V=full` probe cmd/go uses to fingerprint the
// tool for its build cache. The printed line must have the form
// "name version ... buildID=...".
func VersionFlag(arg string) {
	if arg != "-V=full" {
		fmt.Fprintf(os.Stderr, "sciotolint: unsupported flag %q\n", arg)
		os.Exit(1)
	}
	name := filepath.Base(os.Args[0])
	fmt.Printf("%s version devel buildID=feedfacecafebeeffeedfacecafebeef\n", name)
	os.Exit(0)
}

// UnitCheck runs the per-package analyzers over the unit described by
// cfgFile and returns the findings. Whole-program analyzers are skipped:
// the vet protocol hands the tool one compilation unit at a time, which
// cannot support a call graph spanning packages — the standalone driver
// (and CI) covers those. The .vetx facts file is always written (empty),
// as cmd/go requires it to exist.
func UnitCheck(cfgFile string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("%s: %v", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
		Error:    func(error) {},
	}
	info := NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}
	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Build: &BuildInfo{
			Dir:         cfg.Dir,
			SrcFiles:    cfg.GoFiles,
			ImportMap:   cfg.ImportMap,
			PackageFile: cfg.PackageFile,
		},
	}
	return RunAnalyzers(pkg, analyzers)
}
