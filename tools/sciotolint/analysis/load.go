package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package loading for the standalone (`go run ./tools/sciotolint ./...`)
// driver.
//
// Instead of go/packages (unavailable here), the loader shells out to
//
//	go list -export -json -deps [-test] <patterns>
//
// which compiles every package in the dependency closure and reports the
// compiler's export data file for each. Target packages are then parsed
// from source and type-checked with go/types against that export data —
// the same scheme cmd/vet uses — so analysis sees exactly the types the
// compiler saw, with no source re-typechecking of dependencies.

// A Package is one type-checked target package plus everything a Pass needs.
// All packages of one Load share a single FileSet, so whole-program
// analyzers can compare and report positions across packages.
type Package struct {
	ImportPath string
	ForTest    string // non-empty for test variants ("p [p.test]", "p_test [p.test]")
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// Build describes how to re-invoke the compiler on this package.
	// Analyzers that consume compiler diagnostics (noallocgate parses the
	// escape analysis) need it; nil when the driver cannot supply it
	// (analysistest fixtures).
	Build *BuildInfo
}

// BuildInfo carries the compile-unit inputs of one package: its sources
// and the export-data locations of its dependency closure, in the shape
// both `go list -export -deps` (standalone driver) and the vet config
// (unitchecker driver) provide.
type BuildInfo struct {
	Dir         string
	SrcFiles    []string          // absolute paths of the unit's Go files
	ImportMap   map[string]string // source import path -> canonical path
	PackageFile map[string]string // canonical import path -> export data file
}

// listPackage mirrors the subset of `go list -json` output we consume.
type listPackage struct {
	Dir         string
	ImportPath  string
	Name        string
	Export      string
	GoFiles     []string
	CgoFiles    []string
	Imports     []string
	ImportMap   map[string]string
	Standard    bool
	DepOnly     bool
	ForTest     string
	Incomplete  bool
	Error       *struct{ Err string }
	DepsErrors  []*struct{ Err string }
	TestGoFiles []string
}

// Load lists, parses and type-checks the packages named by patterns.
// includeTests additionally loads the in-package and external test
// variants of each target.
func Load(patterns []string, includeTests bool) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-json", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := make(map[string]*listPackage)
	var order []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp)
	}

	// One export-file index for the whole load; every Package's BuildInfo
	// shares it.
	packageFile := make(map[string]string)
	for _, lp := range order {
		if lp.Export != "" {
			packageFile[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range order {
		if lp.DepOnly || lp.Standard {
			continue
		}
		// A root package with an error and no files is a bad pattern or a
		// broken package; -e mode would otherwise swallow it silently.
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		// Skip the synthesized test-binary main package ("p.test"): its
		// only file is a generated _testmain.go.
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		pkg, err := typecheck(fset, lp, byPath)
		if err != nil {
			return nil, err
		}
		pkg.Build = &BuildInfo{
			Dir:         lp.Dir,
			SrcFiles:    absFiles(lp.Dir, lp.GoFiles),
			ImportMap:   lp.ImportMap,
			PackageFile: packageFile,
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// absFiles resolves file names relative to dir.
func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, name := range names {
		if filepath.IsAbs(name) {
			out[i] = name
		} else {
			out[i] = filepath.Join(dir, name)
		}
	}
	return out
}

// typecheck parses lp's files and type-checks them, resolving imports
// through the export data recorded in byPath.
func typecheck(fset *token.FileSet, lp *listPackage, byPath map[string]*listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		dep := byPath[path]
		if dep == nil || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q (importing %q)", path, lp.ImportPath)
		}
		return os.Open(dep.Export)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {}, // collect all errors; first one is returned below
	}
	info := NewInfo()
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		ForTest:    lp.ForTest,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
