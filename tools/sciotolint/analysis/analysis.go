// Package analysis is a self-contained reimplementation of the subset of
// golang.org/x/tools/go/analysis that sciotolint needs. The build
// environment for this repository is hermetic (no module proxy), so the
// canonical framework cannot be added to go.mod; this package mirrors its
// API shape — Analyzer, Pass, Diagnostic — on the standard library alone so
// the checkers themselves read exactly like stock go/analysis code and can
// be ported to the real framework by changing one import.
//
// Differences from golang.org/x/tools/go/analysis, all deliberate:
//
//   - No Facts and no Requires graph: cross-package propagation is done
//     instead by whole-program analyzers (RunProgram) over an explicit
//     call graph (see program.go), which is a better fit for sciotolint's
//     global SPMD invariants than per-package fact streams.
//   - Package loading is driver-side (see load.go) via `go list -export`,
//     using the compiler's export data for dependencies instead of
//     go/packages.
//   - Suppression uses staticcheck-style //lint:ignore directives,
//     filtered by the driver (see ignore.go); a directive that suppresses
//     nothing is itself reported as stale.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check. Exactly one of Run and
// RunProgram is set: Run analyzers see one package at a time (and work in
// both the standalone and `go vet -vettool` drivers), RunProgram analyzers
// see the whole type-checked program with its call graph and only run in
// the standalone driver, which is the one CI uses repo-wide.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation, shown by `sciotolint -list`.
	Doc string

	// Run applies the analyzer to a single package.
	Run func(*Pass) error

	// RunProgram applies the analyzer to the whole loaded program at once.
	// Analyzers that propagate facts through calls (collective congruence,
	// lock ordering) implement this instead of Run.
	RunProgram func(*ProgramPass) error
}

// A Pass provides one analyzer with the parsed, type-checked view of a
// single package and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Build describes the package's compile unit (sources plus the export
	// data of its dependency closure). Analyzers that re-invoke the
	// compiler (noallocgate) need it; nil when the driver cannot supply
	// one, in which case such analyzers skip the package.
	Build *BuildInfo

	// ForTest marks a test-variant package whose non-test files are also
	// analyzed as the base package. Analyzers whose work is per-unit
	// rather than per-file (noallocgate compiles the unit) skip variants
	// to avoid doing everything twice.
	ForTest bool

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding. The driver attaches the analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// A ProgramPass provides a whole-program analyzer with the loaded,
// type-checked program — every target package over one shared FileSet,
// plus the interprocedural call graph — and a sink for diagnostics.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	// Report delivers one diagnostic. Set by the driver. Pos must belong
	// to Prog.Fset.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewInfo returns a types.Info with every map the checkers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Preorder calls f for every node in every file, in depth-first order.
func Preorder(files []*ast.File, f func(ast.Node)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// WithStack calls f for every node in every file with the stack of
// enclosing nodes, innermost last (the node itself is stack[len(stack)-1]).
// If f returns false the node's children are skipped.
func WithStack(files []*ast.File, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, file := range files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !f(n, stack) {
				stack = stack[:len(stack)-1]
				// Returning false from ast.Inspect's callback skips the
				// children AND the closing nil callback, so pop here.
				return false
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}
