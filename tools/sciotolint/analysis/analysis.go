// Package analysis is a self-contained reimplementation of the subset of
// golang.org/x/tools/go/analysis that sciotolint needs. The build
// environment for this repository is hermetic (no module proxy), so the
// canonical framework cannot be added to go.mod; this package mirrors its
// API shape — Analyzer, Pass, Diagnostic — on the standard library alone so
// the checkers themselves read exactly like stock go/analysis code and can
// be ported to the real framework by changing one import.
//
// Differences from golang.org/x/tools/go/analysis, all deliberate:
//
//   - No Facts and no Requires graph: sciotolint's analyzers are all
//     single-package syntax+types checks.
//   - Package loading is driver-side (see load.go) via `go list -export`,
//     using the compiler's export data for dependencies instead of
//     go/packages.
//   - Suppression uses staticcheck-style //lint:ignore directives,
//     filtered by the driver (see ignore.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph documentation, shown by `sciotolint -list`.
	Doc string

	// Run applies the analyzer to a single package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the parsed, type-checked view of a
// single package and a sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding. The driver attaches the analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// NewInfo returns a types.Info with every map the checkers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Preorder calls f for every node in every file, in depth-first order.
func Preorder(files []*ast.File, f func(ast.Node)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			if n != nil {
				f(n)
			}
			return true
		})
	}
}

// WithStack calls f for every node in every file with the stack of
// enclosing nodes, innermost last (the node itself is stack[len(stack)-1]).
// If f returns false the node's children are skipped.
func WithStack(files []*ast.File, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, file := range files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !f(n, stack) {
				stack = stack[:len(stack)-1]
				// Returning false from ast.Inspect's callback skips the
				// children AND the closing nil callback, so pop here.
				return false
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}
