package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
)

// A Finding is one formatted, position-attributed diagnostic — the
// driver-level currency of sciotolint. Findings are structured (rather
// than pre-rendered strings) so the same result set can be printed for
// humans, emitted as JSON for CI annotation tooling, and sorted stably.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the finding in the classic compiler-diagnostic shape
// consumed by editors and the CI problem matcher.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// findingAt builds a Finding from a diagnostic position.
func findingAt(fset *token.FileSet, pos token.Pos, analyzer, message string) Finding {
	posn := fset.Position(pos)
	return Finding{
		File:     posn.Filename,
		Line:     posn.Line,
		Col:      posn.Column,
		Analyzer: analyzer,
		Message:  message,
	}
}

// SortFindings orders findings by (file, line, col, analyzer, message).
// Sorting by position alone is not enough: when two analyzers hit the
// same line their relative order would depend on analyzer execution
// order, and CI diffs against a previous run would churn. The analyzer
// name (then message) tie-break makes the output a pure function of the
// finding set.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteJSON emits findings as a JSON array (never null: an empty run
// yields []), one object per finding, for CI artifact upload and
// machine consumption.
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
