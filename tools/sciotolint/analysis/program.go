package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Whole-program view for interprocedural analyzers.
//
// A Program joins every loaded target package (over the shared FileSet)
// into one function table and a static call graph. Functions are keyed by
// their types.Func full name — e.g. `scioto/internal/core.NewMetrics` or
// `(*scioto/internal/core.taskQueue).steal` — which is identical whether
// the object came from type-checking the defining package's source or
// from a dependency's export data, so call edges resolve across package
// boundaries without a facts protocol.
//
// Function literals are separate nodes: a closure's body is analyzed as
// its own (anonymous) function, and its calls do not contribute to the
// enclosing function's summary. This is deliberate and matches the
// per-package analyzers: a literal is typically a task body or World.Run
// SPMD body whose execution context differs from its definition site, so
// attributing its effects to the definer would be wrong in both
// directions. The one statically certain case — an immediately invoked
// literal `func(){...}()` — is resolved as a normal call edge.

// A Func is one analyzable function body: a declared function or method,
// or a function literal.
type Func struct {
	// Key is the function's unique name in the Program. For declared
	// functions it is types.Func.FullName; literals get a synthetic
	// "pkg.$file:line:col" key.
	Key  string
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Pkg  *Package
	Obj  *types.Func // nil for literals

	// Calls lists the statically resolved call sites in this function's
	// body (excluding nested literals), in source order. Sites whose
	// callee has no body in the program (interface methods, standard
	// library, func values) have Callee == nil.
	Calls []CallSite
}

// Body returns the function's block.
func (f *Func) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// Type returns the function's signature type.
func (f *Func) Type() *types.Signature {
	if f.Obj != nil {
		return f.Obj.Type().(*types.Signature)
	}
	if t, ok := f.Pkg.Info.Types[f.Lit]; ok {
		if sig, ok := t.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// String names the function for diagnostics: the short method/function
// name for declared functions, "func literal" for literals.
func (f *Func) String() string {
	if f.Decl != nil {
		return f.Decl.Name.Name
	}
	return "func literal"
}

// A CallSite is one static call in a function body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *Func // nil when the target has no body in the program
}

// Program is the whole loaded program: all target packages over one
// FileSet, the function table, and the call graph.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs map[string]*Func

	byLit map[*ast.FuncLit]*Func
}

// NewProgram builds the function table and call graph over pkgs. The
// packages must share one FileSet (as Load guarantees). Test variants
// should be excluded by the caller: they re-declare the base package's
// functions under the same keys.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Funcs: make(map[string]*Func),
		byLit: make(map[*ast.FuncLit]*Func),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}
	prog.Pkgs = pkgs

	// Pass 1: the function table.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return false
					}
					obj, _ := pkg.Info.Defs[n.Name].(*types.Func)
					if obj == nil {
						return true
					}
					prog.Funcs[obj.FullName()] = &Func{
						Key: obj.FullName(), Decl: n, Pkg: pkg, Obj: obj,
					}
				case *ast.FuncLit:
					posn := pkg.Fset.Position(n.Pos())
					key := fmt.Sprintf("%s.$%s:%d:%d", pkg.Types.Path(), posn.Filename, posn.Line, posn.Column)
					f := &Func{Key: key, Lit: n, Pkg: pkg}
					prog.Funcs[key] = f
					prog.byLit[n] = f
				}
				return true
			})
		}
	}

	// Pass 2: call edges, per body, not descending into nested literals.
	for _, f := range prog.Funcs {
		f.Calls = prog.collectCalls(f)
	}
	return prog
}

// collectCalls walks f's body, stopping at nested literals, and resolves
// each call expression.
func (prog *Program) collectCalls(f *Func) []CallSite {
	var sites []CallSite
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != f.Lit {
			return false // nested literal: its calls are its own
		}
		if call, ok := n.(*ast.CallExpr); ok {
			sites = append(sites, CallSite{Call: call, Callee: prog.ResolveCall(f.Pkg, call)})
		}
		return true
	}
	ast.Inspect(f.Body(), walk)
	return sites
}

// ResolveCall resolves a call expression in pkg to the Func it statically
// invokes, or nil: interface method calls, calls through function values,
// and calls into packages outside the program have no body here.
func (prog *Program) ResolveCall(pkg *Package, call *ast.CallExpr) *Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return prog.Funcs[fn.FullName()]
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return prog.Funcs[fn.FullName()]
		}
	case *ast.FuncLit:
		return prog.byLit[fun] // immediately invoked literal
	}
	return nil
}

// FuncForLit returns the Func node of a literal encountered while walking
// another function's body.
func (prog *Program) FuncForLit(lit *ast.FuncLit) *Func { return prog.byLit[lit] }

// SortedFuncs returns every function in deterministic (key) order, so
// analyzer output is stable across runs.
func (prog *Program) SortedFuncs() []*Func {
	keys := make([]string, 0, len(prog.Funcs))
	for k := range prog.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Func, len(keys))
	for i, k := range keys {
		out[i] = prog.Funcs[k]
	}
	return out
}

// FixpointBool computes the least fixpoint of a boolean forward property
// over the call graph: a function holds the property if base reports it
// directly or if any statically resolved callee holds it. This is the
// shape of "may (transitively) execute a collective".
func (prog *Program) FixpointBool(base func(*Func) bool) map[*Func]bool {
	marked := make(map[*Func]bool)
	callers := prog.reverseEdges()
	var work []*Func
	for _, f := range prog.Funcs {
		if base(f) {
			marked[f] = true
			work = append(work, f)
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[f] {
			if !marked[caller] {
				marked[caller] = true
				work = append(work, caller)
			}
		}
	}
	return marked
}

// FixpointSet computes the least fixpoint of a set-valued forward
// property: each function's set is seeded by base and absorbs the sets of
// every statically resolved callee. This is the shape of "locks
// (transitively) acquired by a call to this function".
func (prog *Program) FixpointSet(base func(*Func) []string) map[*Func]map[string]bool {
	sets := make(map[*Func]map[string]bool, len(prog.Funcs))
	for _, f := range prog.Funcs {
		set := make(map[string]bool)
		for _, v := range base(f) {
			set[v] = true
		}
		sets[f] = set
	}
	callers := prog.reverseEdges()
	work := prog.SortedFuncs()
	inWork := make(map[*Func]bool, len(work))
	for _, f := range work {
		inWork[f] = true
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[f] = false
		for _, caller := range callers[f] {
			grew := false
			for v := range sets[f] {
				if !sets[caller][v] {
					sets[caller][v] = true
					grew = true
				}
			}
			if grew && !inWork[caller] {
				inWork[caller] = true
				work = append(work, caller)
			}
		}
	}
	return sets
}

// reverseEdges returns, for each function, its static callers.
func (prog *Program) reverseEdges() map[*Func][]*Func {
	rev := make(map[*Func][]*Func)
	for _, f := range prog.Funcs {
		for _, site := range f.Calls {
			if site.Callee != nil {
				rev[site.Callee] = append(rev[site.Callee], f)
			}
		}
	}
	return rev
}
