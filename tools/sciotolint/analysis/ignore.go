package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Ignore directives.
//
// A finding is suppressed by a staticcheck-style directive
//
//	//lint:ignore <analyzer>[,<analyzer>...] <one-line justification>
//
// placed either at the end of the offending line or on its own line
// immediately above it. The justification is mandatory: a directive
// without one is inert and reported by the driver, so every deliberate
// deviation from an invariant carries its reason in the source.

// An ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool
	reason    string
	pos       token.Pos
	used      bool
}

// Ignores holds the parsed directives of one package.
type Ignores struct {
	directives []*ignoreDirective
}

// BuildIgnores parses every //lint:ignore directive in files.
func BuildIgnores(fset *token.FileSet, files []*ast.File) *Ignores {
	ig := &Ignores{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				d := &ignoreDirective{pos: c.Pos()}
				posn := fset.Position(c.Pos())
				d.file, d.line = posn.Filename, posn.Line
				fields := strings.Fields(text)
				if len(fields) >= 1 {
					d.analyzers = make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						d.analyzers[name] = true
					}
				}
				if len(fields) >= 2 {
					d.reason = strings.Join(fields[1:], " ")
				}
				ig.directives = append(ig.directives, d)
			}
		}
	}
	return ig
}

// Suppressed reports whether d is covered by a well-formed directive for
// its analyzer on the diagnostic's line or the line above.
func (ig *Ignores) Suppressed(fset *token.FileSet, d Diagnostic) bool {
	posn := fset.Position(d.Pos)
	for _, dir := range ig.directives {
		if dir.reason == "" || dir.file != posn.Filename {
			continue
		}
		if dir.line != posn.Line && dir.line != posn.Line-1 {
			continue
		}
		if dir.analyzers[d.Analyzer.Name] {
			dir.used = true
			return true
		}
	}
	return false
}

// Problems returns a finding for each malformed (missing justification)
// directive, so silent suppressions cannot creep in. The findings carry
// the pseudo-analyzer name "ignore".
func (ig *Ignores) Problems(fset *token.FileSet) []Finding {
	var out []Finding
	for _, dir := range ig.directives {
		if dir.reason == "" {
			out = append(out, findingAt(fset, dir.pos, "ignore",
				"malformed //lint:ignore directive: want `//lint:ignore <analyzers> <justification>`"))
		}
	}
	return out
}

// Stale returns a finding for each well-formed directive that suppressed
// no diagnostic. A suppression that no longer suppresses anything is
// debt: either the invariant violation it excused was fixed (delete the
// directive) or the analyzer it names changed shape (re-justify it). Only
// meaningful after the complete analyzer suite has run and consulted this
// index — the driver guarantees that by calling Stale last, from RunAll
// only.
func (ig *Ignores) Stale(fset *token.FileSet) []Finding {
	var out []Finding
	for _, dir := range ig.directives {
		if dir.reason != "" && !dir.used {
			names := make([]string, 0, len(dir.analyzers))
			for name := range dir.analyzers {
				names = append(names, name)
			}
			sort.Strings(names)
			out = append(out, findingAt(fset, dir.pos, "ignore",
				fmt.Sprintf("stale //lint:ignore %s directive: it suppresses no diagnostic; delete it",
					strings.Join(names, ","))))
		}
	}
	return out
}
