// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against // want comments, mirroring the conventions of
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// Fixtures live in GOPATH-style trees: Run(t, dir, a, "pkg") loads every
// .go file under dir/src/pkg, resolving fixture imports (such as the stub
// "pgas" package) from the same tree. A line expecting a diagnostic
// carries a trailing comment
//
//	p.Barrier() // want `rank-conditional`
//
// where each backquoted or double-quoted string is a regular expression
// that must match the message of a diagnostic reported on that line.
// Diagnostics without a matching want, and wants without a matching
// diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"scioto/tools/sciotolint/analysis"
)

// TestData returns the absolute path of the package's testdata directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads dir/src/<pkgpath> for each named package, applies a, and
// checks the diagnostics against the fixtures' want comments.
//
// A per-package (Run) analyzer is applied to each named package
// separately. A whole-program (RunProgram) analyzer sees all named
// packages — plus any fixture packages they import, such as the pgas
// stub — as one program, and wants are checked across all named
// packages' files.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	if a.RunProgram != nil {
		runProgram(t, dir, a, pkgpaths)
		return
	}
	for _, pkgpath := range pkgpaths {
		run(t, dir, a, pkgpath)
	}
}

func newLoader(dir string) *loader {
	return &loader{
		srcRoot: filepath.Join(dir, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*loadedPkg),
	}
}

func run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	ld := newLoader(dir)
	lp, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("%s: loading fixture: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     lp.files,
		Pkg:       lp.types,
		TypesInfo: lp.info,
		// Import-free fixtures (the noallocgate ones) can be recompiled
		// with an empty importcfg, so hand every fixture its unit.
		Build: &analysis.BuildInfo{Dir: lp.dir, SrcFiles: lp.srcFiles},
		Report: func(d analysis.Diagnostic) {
			d.Analyzer = a
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkgpath, a.Name, err)
	}

	checkWants(t, ld.fset, lp.files, diags)
}

func runProgram(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths []string) {
	t.Helper()
	ld := newLoader(dir)
	var targetFiles []*ast.File
	for _, pkgpath := range pkgpaths {
		lp, err := ld.load(pkgpath)
		if err != nil {
			t.Fatalf("%s: loading fixture: %v", pkgpath, err)
		}
		targetFiles = append(targetFiles, lp.files...)
	}

	// Every loaded fixture package — the named ones and their fixture
	// imports — joins the program, in deterministic order.
	paths := make([]string, 0, len(ld.pkgs))
	for path := range ld.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	var pkgs []*analysis.Package
	for _, path := range paths {
		lp := ld.pkgs[path]
		pkgs = append(pkgs, &analysis.Package{
			ImportPath: path,
			Fset:       ld.fset,
			Files:      lp.files,
			Types:      lp.types,
			Info:       lp.info,
		})
	}

	var diags []analysis.Diagnostic
	pp := &analysis.ProgramPass{
		Analyzer: a,
		Prog:     analysis.NewProgram(pkgs),
		Report: func(d analysis.Diagnostic) {
			d.Analyzer = a
			diags = append(diags, d)
		},
	}
	if err := a.RunProgram(pp); err != nil {
		t.Fatalf("%v: analyzer %s: %v", pkgpaths, a.Name, err)
	}

	checkWants(t, ld.fset, targetFiles, diags)
}

// A want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				if rest, ok := strings.CutPrefix(text, "want "); ok {
					text = rest
				} else if i := strings.Index(text, "// want "); i >= 0 {
					// An expectation appended to a directive comment, e.g.
					// `//scioto:alloc-ok reason // want ...` — one comment
					// token as far as the parser is concerned.
					text = text[i+len("// want "):]
				} else {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					wants = append(wants, &want{file: posn.Filename, line: posn.Line, re: re, raw: pat})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// loader resolves fixture packages from a GOPATH-style src tree.
type loadedPkg struct {
	dir      string
	srcFiles []string
	files    []*ast.File
	types    *types.Package
	info     *types.Info
}

type loader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*loadedPkg
}

func (ld *loader) load(pkgpath string) (*loadedPkg, error) {
	if lp, ok := ld.pkgs[pkgpath]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var srcFiles []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(ld.fset, path, nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		srcFiles = append(srcFiles, path)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer: (*fixtureImporter)(ld),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(pkgpath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgpath, err)
	}
	lp := &loadedPkg{dir: dir, srcFiles: srcFiles, files: files, types: tpkg, info: info}
	ld.pkgs[pkgpath] = lp
	return lp, nil
}

// fixtureImporter resolves fixture imports from the same src tree, and
// anything else (std lib) through the compiler's export data.
type fixtureImporter loader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	ld := (*loader)(fi)
	if _, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err == nil {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.types, nil
	}
	return importer.Default().Import(path)
}
