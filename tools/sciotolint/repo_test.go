package main

import (
	"testing"

	"scioto/tools/sciotolint/analysis"
	"scioto/tools/sciotolint/checkers"
)

// TestRepoRunsClean runs the complete analyzer suite — per-package and
// whole-program — over the entire repository and requires zero findings.
// This is the regression test behind `make lint`: any new invariant
// violation, stale suppression, or heap allocation on a
// //scioto:noalloc path fails `go test ./...` too, not just CI's lint
// job.
func TestRepoRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole repository; skipped in -short mode")
	}
	pkgs, err := analysis.Load([]string{"scioto/..."}, true)
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	findings, err := analysis.RunAll(pkgs, checkers.Analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
