package checkers

import (
	"go/ast"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// ObsDeterminism flags instrument registration that can differ across
// ranks or runs.
//
// The obs.Merger folds per-rank snapshots by schema hash: every rank must
// register the same instruments, with the same names and kinds, in the
// same order, or the merge panics (or worse, silently refuses trace
// joins). Registration therefore has the same congruence obligation as a
// collective. Three shapes break it:
//
//   - registration inside a `range` over a map: Go's map iteration order
//     is unspecified, so the registration order — and the schema hash —
//     differs run to run and rank to rank;
//   - registration under rank-derived control flow (directly or through
//     any callee, using the same interprocedural rank taint as
//     collcongruence): only some ranks get the instrument;
//   - an instrument name computed from the enclosing function's
//     parameters: different call histories yield different schemas, so
//     whether ranks converge depends on dynamic behavior, not code.
//
// Occupancy-resource registration has the same obligation: occ.NewBuffer
// registers the fixed resource catalogue as obs counters when handed a
// registry, so its call sites are checked like any other registration
// (map iteration, rank-derived control flow). The names themselves come
// from the compile-time catalogue inside the occ package, so the
// parameter-dependent-name check does not apply to them.
//
// Functions declared in the obs package itself are exempt — they
// implement the registry, they don't consume it. The occ package is
// exempt for the same reason: it implements the catalogue registration
// (constant names, declaration order, an array loop), and its congruence
// is asserted by its own tests rather than re-derived here.
var ObsDeterminism = &analysis.Analyzer{
	Name: "obsdeterminism",
	Doc: "flags obs instrument registration under map iteration, rank-dependent control " +
		"flow, or with parameter-dependent names (schema-hashed cross-rank merge " +
		"requires congruent registration)",
	RunProgram: runObsDeterminism,
}

// obsRegisterMethods are the Registry methods that extend the schema.
var obsRegisterMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

// obsPkgName matches by package name for the same reason pgasPkgName
// does: the analyzers must behave identically on scioto/internal/obs and
// on the fixtures' stub.
const obsPkgName = "obs"

// occPkgName / occRegisterFuncs: the occupancy layer's entry points that
// register the resource catalogue on a registry. Matched by package name
// like the obs methods, for the same fixture reason.
const occPkgName = "occ"

var occRegisterFuncs = map[string]bool{
	"NewBuffer": true,
}

func runObsDeterminism(pass *analysis.ProgramPass) error {
	c := &obsChecker{
		pass:  pass,
		prog:  pass.Prog,
		taint: computeRankTaint(pass.Prog),
	}
	c.registers = c.prog.FixpointBool(func(f *analysis.Func) bool {
		if exemptObsPkg(f) {
			return false
		}
		found := false
		ast.Inspect(f.Body(), func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != f.Lit {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok &&
				(obsRegisterCall(f.Pkg.Info, call) || occRegisterCall(f.Pkg.Info, call)) {
				found = true
			}
			return !found
		})
		return found
	})
	for _, f := range c.prog.SortedFuncs() {
		if !exemptObsPkg(f) {
			c.checkFunc(f)
		}
	}
	return nil
}

// exemptObsPkg reports whether f implements (rather than consumes) the
// registration machinery.
func exemptObsPkg(f *analysis.Func) bool {
	name := f.Pkg.Types.Name()
	return name == obsPkgName || name == occPkgName
}

type obsChecker struct {
	pass      *analysis.ProgramPass
	prog      *analysis.Program
	taint     *rankTaint
	registers map[*analysis.Func]bool
}

// obsRegisterCall reports whether call registers an instrument: a
// Counter/Gauge/Histogram method declared in a package named "obs".
func obsRegisterCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != obsPkgName {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return obsRegisterMethods[fn.Name()]
}

// occRegisterCall reports whether call creates an occupancy buffer (and
// with it, when a registry is passed, the catalogue's obs counters): a
// call to one of occRegisterFuncs declared in a package named "occ".
func occRegisterCall(info *types.Info, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != occPkgName {
		return false
	}
	return occRegisterFuncs[fn.Name()]
}

func (c *obsChecker) checkFunc(f *analysis.Func) {
	info := f.Pkg.Info
	params := make(map[types.Object]bool)
	for _, p := range paramObjects(f) {
		if p != nil {
			params[p] = true
		}
	}

	var stack []ast.Node
	visit := func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != f.Lit {
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		direct := obsRegisterCall(info, call)
		directOcc := !direct && occRegisterCall(info, call)
		viaCallee := false
		if !direct && !directOcc {
			if callee := c.prog.ResolveCall(f.Pkg, call); callee != nil && c.registers[callee] {
				viaCallee = true
			}
		}
		if !direct && !directOcc && !viaCallee {
			return true
		}
		what := "instrument registration"
		switch {
		case directOcc:
			what = "occupancy-resource registration"
		case viaCallee:
			what = "call that registers instruments"
		}
		if rs := enclosingMapRange(info, stack); rs != nil {
			c.pass.Reportf(call.Pos(),
				"%s inside a range over a map: iteration order is unspecified, so the "+
					"registration order and schema hash differ across ranks and runs, "+
					"breaking the cross-rank merge", what)
		}
		if cond := c.enclosingTaintCond(f, stack); cond != nil {
			c.pass.Reportf(call.Pos(),
				"%s is conditional on the process rank: ranks register different "+
					"instruments and the schema-hashed merge rejects their snapshots", what)
		}
		if direct && len(call.Args) > 0 && exprUsesParams(info, call.Args[0], params) {
			c.pass.Reportf(call.Pos(),
				"instrument name depends on the enclosing function's parameters: the schema "+
					"becomes a function of dynamic call history, so ranks converge only by "+
					"accident; use a fixed name set registered up front")
		}
		return true
	}
	ast.Inspect(f.Body(), visit)
}

// enclosingTaintCond is enclosingRankCond driven by the interprocedural
// rank taint, with no balanced-branch exemption: registration order
// matters, so even arms registering "equally" are suspect.
func (c *obsChecker) enclosingTaintCond(f *analysis.Func, stack []ast.Node) ast.Expr {
	rank := func(e ast.Expr) bool { return c.taint.rankExpr(c.prog, f, e) }
	for i := len(stack) - 2; i >= 0; i-- {
		inner := stack[i+1]
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if (containsNode(n.Body, inner) || containsNode(n.Else, inner)) && rank(n.Cond) {
				return n.Cond
			}
		case *ast.ForStmt:
			if n.Cond != nil && containsNode(n.Body, inner) && rank(n.Cond) {
				return n.Cond
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && containsNode(n.Body, inner) && rank(n.Tag) {
				return n.Tag
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if rank(e) && containsStmts(n.Body, inner) {
					return e
				}
			}
		}
	}
	return nil
}

// exprUsesParams reports whether e references any of the given parameter
// objects.
func exprUsesParams(info *types.Info, e ast.Expr, params map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && params[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
