package checkers

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"scioto/tools/sciotolint/analysis"
)

// NoAllocGate is the static form of the zero-allocs-per-steal gate.
//
// The steal and insert hot paths promise zero heap allocations per
// operation; today that promise is enforced only dynamically, by
// testing.AllocsPerRun in bench_test.go, which reports "0.0 != 1.0"
// without saying which line allocated — and only for inputs the test
// happens to exercise. This analyzer re-invokes the compiler with -m on
// the package (using the export data the driver already collected, so no
// build cache can swallow the diagnostics) and parses the escape
// analysis: any "escapes to heap" or "moved to heap" inside a function
// annotated
//
//	//scioto:noalloc
//
// is reported at the exact allocating line. A known warm-up allocation
// (e.g. a buffer growth path that only runs until the pool is hot) is
// waived, with a mandatory justification, by a comment on or directly
// above the allocating line:
//
//	//scioto:alloc-ok grows the reusable buffer; amortized to zero once warm
//
// A waiver that waives nothing is reported as stale, exactly like a stale
// //lint:ignore.
//
// The analyzer needs the package's compile unit (sources + dependency
// export data); it runs in both the standalone and vet-tool drivers, and
// silently skips packages where the driver cannot supply one (test
// fixtures without BuildInfo) and test variants (the unit would be
// compiled twice).
var NoAllocGate = &analysis.Analyzer{
	Name: "noallocgate",
	Doc: "flags heap allocations (per the compiler's escape analysis) inside " +
		"//scioto:noalloc-annotated functions — the static zero-allocs-per-steal gate, " +
		"naming the exact allocating line",
	Run: runNoAllocGate,
}

// naRegion is one annotated function body, as a file line range.
type naRegion struct {
	file       string
	start, end int
	name       string // function name, for the diagnostic
	pos        token.Pos
}

// naWaiver is one //scioto:alloc-ok comment.
type naWaiver struct {
	file   string
	line   int
	reason string
	pos    token.Pos
	used   bool
}

func runNoAllocGate(pass *analysis.Pass) error {
	if pass.ForTest || pass.Build == nil {
		return nil
	}

	var regions []*naRegion
	var waivers []*naWaiver
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//scioto:alloc-ok")
				if !ok {
					continue
				}
				reason := strings.TrimSpace(rest)
				if reason == "" {
					pass.Reportf(c.Pos(),
						"malformed //scioto:alloc-ok: a one-line justification is required")
					continue
				}
				posn := pass.Fset.Position(c.Pos())
				waivers = append(waivers, &naWaiver{
					file: posn.Filename, line: posn.Line, reason: reason, pos: c.Pos(),
				})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Doc == nil || fd.Body == nil {
				return false
			}
			for _, c := range fd.Doc.List {
				if c.Text != "//scioto:noalloc" && !strings.HasPrefix(c.Text, "//scioto:noalloc ") {
					continue
				}
				start := pass.Fset.Position(fd.Body.Pos())
				end := pass.Fset.Position(fd.Body.End())
				regions = append(regions, &naRegion{
					file: start.Filename, start: start.Line, end: end.Line,
					name: fd.Name.Name, pos: fd.Pos(),
				})
				break
			}
			return false
		})
	}

	if len(regions) > 0 {
		diags, err := escapeDiagnostics(pass.Pkg.Path(), pass.Pkg.Name(), pass.Build)
		if err != nil {
			return err
		}
		for _, d := range diags {
			region := regionAt(regions, d.file, d.line)
			if region == nil {
				continue
			}
			if w := waiverAt(waivers, d.file, d.line); w != nil {
				w.used = true
				continue
			}
			pos := posInFset(pass.Fset, d.file, d.line, d.col)
			if !pos.IsValid() {
				pos = region.pos
			}
			pass.Reportf(pos,
				"heap allocation in //scioto:noalloc function %s: %s", region.name, d.msg)
		}
	}
	for _, w := range waivers {
		if !w.used {
			pass.Reportf(w.pos,
				"stale //scioto:alloc-ok: no heap allocation in a //scioto:noalloc region "+
					"on this or the next line; delete it")
		}
	}
	return nil
}

func regionAt(regions []*naRegion, file string, line int) *naRegion {
	for _, r := range regions {
		if r.file == file && r.start <= line && line <= r.end {
			return r
		}
	}
	return nil
}

// waiverAt finds a waiver on the allocating line or the line directly
// above it (the same placement rule as //lint:ignore).
func waiverAt(waivers []*naWaiver, file string, line int) *naWaiver {
	for _, w := range waivers {
		if w.file == file && (w.line == line || w.line == line-1) {
			return w
		}
	}
	return nil
}

// naDiag is one parsed compiler diagnostic.
type naDiag struct {
	file      string
	line, col int
	msg       string
}

var naDiagRE = regexp.MustCompile(`^(.+?):(\d+):(\d+): (.*)$`)

// escapeDiagnostics compiles the unit with `go tool compile -m` against
// the dependency export data in build and returns the heap-allocation
// diagnostics. Invoking the compiler directly (rather than `go build
// -gcflags=-m`) bypasses the build cache, which replays no diagnostics
// on a cache hit.
func escapeDiagnostics(pkgPath, pkgName string, build *analysis.BuildInfo) ([]naDiag, error) {
	tmp, err := os.MkdirTemp("", "sciotolint-noalloc-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	var cfg strings.Builder
	for _, src := range sortedKeys(build.ImportMap) {
		fmt.Fprintf(&cfg, "importmap %s=%s\n", src, build.ImportMap[src])
	}
	for _, path := range sortedKeys(build.PackageFile) {
		fmt.Fprintf(&cfg, "packagefile %s=%s\n", path, build.PackageFile[path])
	}
	cfgPath := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgPath, []byte(cfg.String()), 0o666); err != nil {
		return nil, err
	}

	if pkgName == "main" {
		pkgPath = "main" // how cmd/go names main packages to the compiler
	}
	args := []string{
		"tool", "compile",
		"-p", pkgPath,
		"-importcfg", cfgPath,
		"-m",
		"-o", filepath.Join(tmp, "noalloc.a"),
	}
	args = append(args, build.SrcFiles...)
	cmd := exec.Command("go", args...)
	cmd.Dir = build.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("noallocgate: go tool compile %s: %v\n%s", pkgPath, err, out)
	}

	var diags []naDiag
	for _, line := range strings.Split(string(out), "\n") {
		m := naDiagRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(build.Dir, file)
		}
		diags = append(diags, naDiag{file: file, line: ln, col: col, msg: msg})
	}
	return diags, nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// posInFset maps a (file, line, col) back into the pass's FileSet.
func posInFset(fset *token.FileSet, filename string, line, col int) token.Pos {
	pos := token.NoPos
	fset.Iterate(func(f *token.File) bool {
		if f.Name() != filename {
			return true
		}
		if line >= 1 && line <= f.LineCount() {
			pos = f.LineStart(line) + token.Pos(col-1)
		}
		return false
	})
	return pos
}
