package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// LocalEscape flags p.Local(seg) slices that outlive the protocol window
// that makes them safe.
//
// Local returns this process's own instance of a segment for direct
// access; the caller must guarantee at the protocol level that no remote
// operation concurrently touches the bytes (pgas.go). That guarantee is
// established by the surrounding protocol — typically "between these two
// barriers, only the owner writes this region". A Local slice that is
// stored in a struct field or package variable, captured by a goroutine,
// returned, or simply used on the far side of a Barrier has escaped that
// window: the next protocol phase may hand the same bytes to remote
// writers, and the stale slice becomes a data race that -race can only
// catch if the interleaving happens to occur.
var LocalEscape = &analysis.Analyzer{
	Name: "localescape",
	Doc: "flags p.Local(seg) slices stored in fields, captured by goroutines, " +
		"returned, or used across a Barrier (the slice is only safe inside its protocol window)",
	Run: runLocalEscape,
}

func runLocalEscape(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				// A concrete method named Local is a transport or wrapper
				// implementing the accessor by delegation — returning
				// inner.Local(seg) there is the implementation, not an
				// escape (the caller's window rules still apply at the
				// call site).
				if !isProcImplMethod(fd, "Local") {
					localEscapeFunc(pass, fd.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// localEscapeFunc analyzes one top-level function body, including its
// nested literals (position-based barrier ordering is meaningful within a
// single SPMD body).
func localEscapeFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// localVars: variables bound directly to a p.Local(...) result.
	localVars := make(map[types.Object]token.Pos)
	// barriers: positions of Barrier() calls in this function.
	var barriers []token.Pos

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := pgasMethod(info, n); ok && name == "Barrier" {
				barriers = append(barriers, n.Pos())
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isLocalCall(info, rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						localVars[obj] = n.Pos()
					} else if obj := info.Uses[id]; obj != nil {
						localVars[obj] = n.Pos()
					}
				}
			}
		}
		return true
	})

	// Direct escapes of the Local(...) call itself.
	analysis.WithStack([]*ast.File{fileOf(pass, body)}, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isLocalCall(info, call) || !containsNode(body, call) {
			return true
		}
		parent := stack[len(stack)-2]
		switch p := parent.(type) {
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs != ast.Expr(call) || i >= len(p.Lhs) {
					continue
				}
				switch lhs := p.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(call.Pos(),
						"Local slice stored in field %s outlives its protocol window", exprKey(lhs))
				case *ast.Ident:
					if obj := info.Uses[lhs]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(call.Pos(),
							"Local slice stored in package variable %s outlives its protocol window", lhs.Name)
					}
				}
			}
		case *ast.KeyValueExpr, *ast.CompositeLit:
			pass.Reportf(call.Pos(), "Local slice stored in a composite literal outlives its protocol window")
		case *ast.ReturnStmt:
			pass.Reportf(call.Pos(), "Local slice returned from the function escapes its protocol window")
		case *ast.CallExpr:
			if len(stack) >= 3 {
				if g, ok := stack[len(stack)-3].(*ast.GoStmt); ok && g.Call == p {
					pass.Reportf(call.Pos(), "Local slice passed to a goroutine escapes its protocol window")
				}
			}
		}
		return true
	})

	// Escapes of variables bound to Local slices.
	reported := make(map[types.Object]bool)
	analysis.WithStack([]*ast.File{fileOf(pass, body)}, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !containsNode(body, id) {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		bindPos, isLocal := localVars[obj]
		if !isLocal || reported[obj] || id.Pos() <= bindPos {
			return true
		}
		// Captured by a goroutine's function literal?
		for i := len(stack) - 2; i >= 0; i-- {
			lit, ok := stack[i].(*ast.FuncLit)
			if !ok || containsNode(lit, bindNode(bindPos)) {
				continue
			}
			if i >= 2 {
				if g, ok := stack[i-2].(*ast.GoStmt); ok && containsNode(g, lit) {
					pass.Reportf(id.Pos(),
						"Local slice %s captured by a goroutine escapes its protocol window", id.Name)
					reported[obj] = true
					return true
				}
			}
		}
		// Used across a Barrier?
		for _, b := range barriers {
			if bindPos < b && b < id.Pos() {
				pass.Reportf(id.Pos(),
					"Local slice %s is used across a Barrier; the protocol window it was obtained in has closed — re-acquire it with Local after the barrier", id.Name)
				reported[obj] = true
				break
			}
		}
		return true
	})
}

// bindNode wraps a position as a zero-width node for containsNode checks.
type posNode token.Pos

func (p posNode) Pos() token.Pos { return token.Pos(p) }
func (p posNode) End() token.Pos { return token.Pos(p) }

func bindNode(p token.Pos) ast.Node { return posNode(p) }

func isLocalCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	name, ok := pgasMethod(info, call)
	return ok && name == "Local"
}

// fileOf returns the *ast.File containing node positions of body.
func fileOf(pass *analysis.Pass, body *ast.BlockStmt) *ast.File {
	for _, f := range pass.Files {
		if containsNode(f, body) {
			return f
		}
	}
	return pass.Files[0]
}
