package checkers_test

import (
	"testing"

	"scioto/tools/sciotolint/analysis/analysistest"
	"scioto/tools/sciotolint/checkers"
)

func TestCollective(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.Collective, "collective")
}

func TestRelaxedWord(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.RelaxedWord, "relaxedword")
}

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.LockBalance, "lockbalance")
}

func TestNbComplete(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.NbComplete, "nbcomplete")
}

func TestLocalEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.LocalEscape, "localescape")
}

func TestProcEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.ProcEscape, "procescape")
}

func TestNoAllocGate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.NoAllocGate, "noallocgate")
}

func TestJournalAppend(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.JournalAppend, "journalappend")
}

func TestCollCongruence(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.CollCongruence, "collcongruence")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.LockOrder, "lockorder")
}

func TestObsDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), checkers.ObsDeterminism, "obsdeterminism")
}
