package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// LockBalance flags PGAS lock acquisitions with an escape path that lacks
// a release.
//
// pgas locks are not reentrant and are held across processes: a function
// that returns with a lock held deadlocks the next acquirer — often a
// thief on another rank, so the hang appears far from the bug. The
// analyzer abstractly interprets each function body, tracking the set of
// held (proc, id) pairs (keyed by the argument expressions) through
// structured control flow, and reports:
//
//   - a return reached with a lock held and no deferred unlock,
//   - falling off the end of the function with a lock held,
//   - re-acquiring a lock already held on the same path (self-deadlock),
//   - a loop iteration that ends holding a lock it acquired.
//
// TryLock is understood in its idiomatic forms `if p.TryLock(a, b) {...}`,
// `if !p.TryLock(a, b) { return }`, and `ok := p.TryLock(a, b)` followed by
// a branch on ok. The analysis is intraprocedural and keys locks by the
// source text of the argument pair, so Lock/Unlock calls must spell the
// pair the same way — which is also what a human reader needs.
//
// Methods named Lock, TryLock, or Unlock on a concrete receiver are
// exempt: they are a transport or wrapper (e.g. pgas/faulty) implementing
// the lock primitive by delegation, so the balance obligation lies with
// their caller, not inside them.
var LockBalance = &analysis.Analyzer{
	Name: "lockbalance",
	Doc: "flags p.Lock(proc, id) with a return path lacking a matching Unlock " +
		"(PGAS locks are non-reentrant; a leaked lock deadlocks the next acquirer)",
	Run: runLockBalance,
}

// lbState is the abstract state: locks held on the current path and locks
// with a pending deferred unlock.
type lbState struct {
	held     map[string]token.Pos // lock key -> Lock call position
	deferred map[string]bool
	tryVars  map[types.Object]string // ok := p.TryLock(a, b) -> lock key
}

func newLBState() *lbState {
	return &lbState{
		held:     make(map[string]token.Pos),
		deferred: make(map[string]bool),
		tryVars:  make(map[types.Object]string),
	}
}

func (s *lbState) clone() *lbState {
	c := newLBState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	for k, v := range s.tryVars {
		c.tryVars[k] = v
	}
	return c
}

// merge unions the held/deferred sets of the branch states that can fall
// through, so a lock leaked on any branch stays visible.
func (s *lbState) merge(branches ...*lbState) {
	s.held = make(map[string]token.Pos)
	s.deferred = make(map[string]bool)
	for _, b := range branches {
		for k, v := range b.held {
			s.held[k] = v
		}
		for k := range b.deferred {
			s.deferred[k] = true
		}
		for k, v := range b.tryVars {
			s.tryVars[k] = v
		}
	}
}

type lockChecker struct {
	pass *analysis.Pass
}

func runLockBalance(pass *analysis.Pass) error {
	c := &lockChecker{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && !isProcImplMethod(n, "Lock", "TryLock", "Unlock") {
					c.checkFunc(n.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(n.Body)
			}
			return true
		})
	}
	return nil
}

func (c *lockChecker) checkFunc(body *ast.BlockStmt) {
	st := newLBState()
	terminated := c.scan(body.List, st)
	if !terminated {
		for key, pos := range st.held {
			if !st.deferred[key] {
				c.pass.Reportf(pos,
					"lock (%s) acquired here is not released on the path falling off the end of the function", key)
			}
		}
	}
}

// scan interprets a statement list, mutating st. It reports whether every
// path through the list terminates (returns or panics), i.e. control
// cannot fall through to the statement after the list.
func (c *lockChecker) scan(stmts []ast.Stmt, st *lbState) bool {
	for _, stmt := range stmts {
		if c.scanStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (c *lockChecker) scanStmt(stmt ast.Stmt, st *lbState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.scanCall(s.X, st)
		if isPanic(s.X) {
			return true
		}

	case *ast.AssignStmt:
		// ok := p.TryLock(a, b)
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if key, ok := c.lockCall(s.Rhs[0], "TryLock"); ok {
				if id, ok := s.Lhs[0].(*ast.Ident); ok {
					if obj := c.obj(id); obj != nil {
						st.tryVars[obj] = key
					}
				}
			}
		}

	case *ast.DeferStmt:
		// defer p.Unlock(a, b), or defer func() { ...; p.Unlock(a, b); ... }()
		if key, ok := c.lockCall(s.Call, "Unlock"); ok {
			st.deferred[key] = true
		} else if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if key, ok := c.lockCall(n, "Unlock"); ok {
					st.deferred[key] = true
				}
				return true
			})
		}

	case *ast.ReturnStmt:
		for key, pos := range st.held {
			if !st.deferred[key] {
				c.pass.Reportf(s.Pos(),
					"return with lock (%s) held (acquired at %s) and no deferred unlock",
					key, c.pass.Fset.Position(pos))
			}
		}
		return true

	case *ast.BranchStmt:
		// break/continue/goto end this path as far as the structured walk
		// can see; treat as terminating to avoid false reports downstream.
		return true

	case *ast.BlockStmt:
		return c.scan(s.List, st)

	case *ast.LabeledStmt:
		return c.scanStmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, st)
		}
		thenSt, elseSt := st.clone(), st.clone()
		if key, negated, ok := c.tryLockCond(s.Cond, st); ok {
			if negated {
				// if !p.TryLock(a, b) { ... }: lock held on the else/fallthrough side.
				elseSt.held[key] = s.Cond.Pos()
			} else {
				thenSt.held[key] = s.Cond.Pos()
			}
		}
		thenTerm := c.scan(s.Body.List, thenSt)
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = c.scan(e.List, elseSt)
		case *ast.IfStmt:
			elseTerm = c.scanStmt(e, elseSt)
		}
		var fallthroughs []*lbState
		if !thenTerm {
			fallthroughs = append(fallthroughs, thenSt)
		}
		if !elseTerm {
			fallthroughs = append(fallthroughs, elseSt)
		}
		if len(fallthroughs) == 0 {
			return true
		}
		st.merge(fallthroughs...)

	case *ast.ForStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, st)
		}
		bodySt := st.clone()
		c.scan(s.Body.List, bodySt)
		c.checkLoopBody(st, bodySt)

	case *ast.RangeStmt:
		bodySt := st.clone()
		c.scan(s.Body.List, bodySt)
		c.checkLoopBody(st, bodySt)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		var fallthroughs []*lbState
		for _, cl := range body.List {
			var caseBody []ast.Stmt
			switch cl := cl.(type) {
			case *ast.CaseClause:
				caseBody = cl.Body
			case *ast.CommClause:
				caseBody = cl.Body
			}
			caseSt := st.clone()
			if !c.scan(caseBody, caseSt) {
				fallthroughs = append(fallthroughs, caseSt)
			}
		}
		fallthroughs = append(fallthroughs, st.clone()) // no case may match
		st.merge(fallthroughs...)
	}
	return false
}

// scanCall updates st for a Lock/Unlock expression statement.
func (c *lockChecker) scanCall(e ast.Expr, st *lbState) {
	if key, ok := c.lockCall(e, "Lock"); ok {
		if prev, held := st.held[key]; held {
			c.pass.Reportf(e.Pos(),
				"lock (%s) re-acquired while already held (acquired at %s); PGAS locks are non-reentrant, this self-deadlocks",
				key, c.pass.Fset.Position(prev))
		}
		st.held[key] = e.Pos()
		return
	}
	if key, ok := c.lockCall(e, "Unlock"); ok {
		delete(st.held, key)
	}
}

// checkLoopBody reports locks that a loop iteration acquired and did not
// release: the next iteration's re-acquire self-deadlocks.
func (c *lockChecker) checkLoopBody(before, after *lbState) {
	for key, pos := range after.held {
		if _, was := before.held[key]; !was && !after.deferred[key] {
			c.pass.Reportf(pos,
				"lock (%s) acquired in loop body is not released by the end of the iteration; "+
					"the next iteration's acquire self-deadlocks", key)
		}
	}
}

// lockCall reports the lock key if n is a call to the named pgas lock
// method with two arguments.
func (c *lockChecker) lockCall(n ast.Node, method string) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	name, ok := pgasMethod(c.pass.TypesInfo, call)
	if !ok || name != method || len(call.Args) != 2 {
		return "", false
	}
	return exprKey(call.Args[0]) + ", " + exprKey(call.Args[1]), true
}

// tryLockCond recognizes `p.TryLock(a, b)`, `!p.TryLock(a, b)`, `ok` and
// `!ok` (with ok bound from TryLock) as an if condition.
func (c *lockChecker) tryLockCond(cond ast.Expr, st *lbState) (key string, negated, ok bool) {
	if un, isNot := cond.(*ast.UnaryExpr); isNot && un.Op == token.NOT {
		key, _, ok = c.tryLockCond(un.X, st)
		return key, true, ok
	}
	if key, isCall := c.lockCall(cond, "TryLock"); isCall {
		return key, false, true
	}
	if id, isIdent := cond.(*ast.Ident); isIdent {
		if obj := c.obj(id); obj != nil {
			if key, bound := st.tryVars[obj]; bound {
				return key, false, true
			}
		}
	}
	return "", false, false
}

func (c *lockChecker) obj(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Uses[id]
}

func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
