package checkers

import (
	"go/ast"
	"go/types"
	"strings"

	"scioto/tools/sciotolint/analysis"
)

// JournalAppend enforces the work-replay journal discipline on queue
// mutations.
//
// Recovery (internal/core/recover.go) can only replay tasks that were
// journaled when they entered a queue: a descriptor pushed without a
// journal record is invisible to the healer and silently lost when its
// holder dies. The append sites are easy to miss — the raw queue
// primitives (pushPrivate, pushLocked, addRemote) know nothing about the
// journal, so nothing at the type level stops a new code path from
// enqueueing an unjournaled task.
//
// The analyzer checks every function in a package that declares those
// primitives as methods. A function whose body (including nested function
// literals) inserts into a queue — by calling a primitive directly, or by
// calling a package-local function marked as inheriting the obligation —
// must witness a journal append in the same body: a call to journalize,
// journalizePending, or slotBytes (descriptor bytes read back out of the
// journal are by definition already recorded).
//
// Two directives, written in a function's doc comment with a mandatory
// justification, adjust the obligation:
//
//	//scioto:journaled <why callers always pass journaled descriptors>
//
// marks a function whose descriptor arguments are journaled by its
// callers (e.g. TC.requeue). Its own body is exempt, and every call to it
// is treated as a queue mutation, so the obligation propagates to the
// caller — exactly where the append must happen.
//
//	//scioto:journal-exempt <why this path is outside the discipline>
//
// terminates the obligation: the function's queue use is legitimately
// unjournaled (a raw-queue microbenchmark; stolen descriptors that carry
// the journal reference stamped at the origin rank's Add). A directive on
// a function with no queue mutation is reported as stale, like a stale
// //lint:ignore.
var JournalAppend = &analysis.Analyzer{
	Name: "journalappend",
	Doc: "flags queue insertions (pushPrivate/pushLocked/addRemote and their annotated " +
		"wrappers) in functions with no journal append on the path — unjournaled tasks " +
		"are invisible to work-replay recovery and die with their holder",
	Run: runJournalAppend,
}

// jaPrimitives are the raw queue-insertion methods; jaWitnesses are the
// calls that prove the descriptor is in the replay journal.
var (
	jaPrimitives = map[string]bool{"pushPrivate": true, "pushLocked": true, "addRemote": true}
	jaWitnesses  = map[string]bool{"journalize": true, "journalizePending": true, "slotBytes": true}
)

const (
	jaMarkJournaled = "//scioto:journaled"
	jaMarkExempt    = "//scioto:journal-exempt"
)

// jaDirective scans a function's doc comment for one of the two markers,
// reporting malformed (justification-free) ones.
func jaDirective(pass *analysis.Pass, fd *ast.FuncDecl) (journaled, exempt bool) {
	if fd.Doc == nil {
		return false, false
	}
	for _, c := range fd.Doc.List {
		for _, mark := range []string{jaMarkJournaled, jaMarkExempt} {
			rest, ok := strings.CutPrefix(c.Text, mark)
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue
			}
			if strings.TrimSpace(rest) == "" {
				pass.Reportf(fd.Pos(), "malformed %s directive: want `%s <justification>`", mark, mark)
				continue
			}
			if mark == jaMarkJournaled {
				journaled = true
			} else {
				exempt = true
			}
		}
	}
	return journaled, exempt
}

func runJournalAppend(pass *analysis.Pass) error {
	// The discipline applies only to packages that declare the queue
	// primitives; elsewhere the names are a coincidence.
	declares := false
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv != nil && jaPrimitives[fd.Name.Name] {
				declares = true
			}
		}
	}
	if !declares {
		return nil
	}

	// First pass: classify every declared function. Primitives implicitly
	// carry the journaled-by-caller obligation. Test files are outside the
	// discipline: the queue unit tests drive the primitives directly, and
	// nothing a test enqueues outlives the test to need replay.
	journaled := map[types.Object]bool{} // calls to these count as mutations
	exempt := map[*ast.FuncDecl]bool{}
	var decls []*ast.FuncDecl
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			j, e := jaDirective(pass, fd)
			obj := pass.TypesInfo.Defs[fd.Name]
			isPrim := fd.Recv != nil && jaPrimitives[fd.Name.Name]
			if (j || isPrim) && obj != nil {
				journaled[obj] = true
			}
			if e {
				exempt[fd] = true
			}
			if (j || e) && isPrim {
				pass.Reportf(fd.Pos(), "%s is a queue primitive; it already carries the journaled-by-caller obligation, drop the directive", fd.Name.Name)
			}
		}
	}

	// jaCallee resolves a call to its package-local *types.Func, if any.
	callee := func(call *ast.CallExpr) *types.Func {
		var id *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return nil
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg() != pass.Pkg {
			return nil
		}
		return fn
	}

	// Second pass: each un-annotated function with a mutation needs a
	// witness somewhere in the same declaration (closures included — the
	// append and the push are often in different literals of one builder).
	for _, fd := range decls {
		isPrim := fd.Recv != nil && jaPrimitives[fd.Name.Name]
		obj := pass.TypesInfo.Defs[fd.Name]
		marked := isPrim || (obj != nil && journaled[obj])

		type mutation struct {
			pos  ast.Node
			name string
		}
		var muts []mutation
		witness := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(call)
			if fn == nil {
				return true
			}
			switch {
			case jaWitnesses[fn.Name()]:
				witness = true
			case jaPrimitives[fn.Name()] && fn.Type().(*types.Signature).Recv() != nil:
				muts = append(muts, mutation{call, fn.Name()})
			case journaled[fn]:
				muts = append(muts, mutation{call, fn.Name()})
			}
			return true
		})

		switch {
		case marked || isPrim:
			// Obligation lies with callers; nothing to check here.
		case exempt[fd]:
			if len(muts) == 0 {
				pass.Reportf(fd.Pos(), "stale %s directive on %s: it contains no queue mutation; delete it", jaMarkExempt, fd.Name.Name)
			}
		case len(muts) > 0 && !witness:
			for _, m := range muts {
				pass.Reportf(m.pos.Pos(),
					"queue mutation %s in %s with no journal append on the path: "+
						"call journalize/journalizePending first, or mark %s %s / %s with a justification",
					m.name, fd.Name.Name, fd.Name.Name, jaMarkJournaled, jaMarkExempt)
			}
		}
		if obj != nil && journaled[obj] && !isPrim && len(muts) == 0 {
			pass.Reportf(fd.Pos(), "stale %s directive on %s: it contains no queue mutation; delete it", jaMarkJournaled, fd.Name.Name)
		}
	}
	return nil
}
