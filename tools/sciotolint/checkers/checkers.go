// Package checkers implements sciotolint's eleven analyzers. Each one
// machine-checks an invariant of the Scioto runtime's PGAS programming
// model that is otherwise enforced only by comments (see the Proc contract
// in internal/pgas/pgas.go and the split-queue discipline in
// internal/core/queue.go). Eight are per-package; three (collcongruence,
// lockorder, obsdeterminism) are whole-program analyzers over the
// interprocedural call graph and run only in the standalone driver.
package checkers

import (
	"go/ast"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// Analyzers is the full sciotolint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	Collective,
	RelaxedWord,
	LockBalance,
	NbComplete,
	LocalEscape,
	ProcEscape,
	NoAllocGate,
	JournalAppend,
	CollCongruence,
	LockOrder,
	ObsDeterminism,
}

// pgasPkgName is the package whose interface methods carry the invariants.
// Matching is by package name rather than import path so the analyzers
// work identically on scioto/internal/pgas and on the test fixtures' stub.
// Methods of concrete transport types (pgas/shm, pgas/dsim) deliberately do
// NOT match: the transports implement the contract, they don't consume it.
const pgasPkgName = "pgas"

// pgasMethod reports the method name if call invokes a method declared in
// a package named "pgas" (i.e. a pgas.Proc or pgas.World interface method).
func pgasMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false // package-level function (e.g. pgas.PutF64)
	}
	if fn.Pkg() == nil || fn.Pkg().Name() != pgasPkgName {
		return "", false
	}
	return fn.Name(), true
}

// isProcType reports whether t is the pgas.Proc interface type (possibly
// behind pointers or aliases).
func isProcType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil && obj.Pkg().Name() == pgasPkgName
}

// isProcImplMethod reports whether fd declares a method with one of the
// given names on a concrete receiver — a transport or interposing wrapper
// (e.g. pgas/faulty) implementing the Proc contract by delegation. The
// invariants the checkers enforce bind the interface's consumers, not its
// implementations: a wrapper's Lock forwarding to inner.Lock is not a
// leaked acquisition, and a wrapper's Local returning inner.Local(seg) is
// not an escaping protocol window — the obligation transfers to the
// wrapper's caller, where the same checkers see it.
func isProcImplMethod(fd *ast.FuncDecl, names ...string) bool {
	if fd.Recv == nil {
		return false
	}
	for _, n := range names {
		if fd.Name.Name == n {
			return true
		}
	}
	return false
}

// exprKey renders an expression to a canonical string, used to match the
// (proc, id) arguments of Lock/Unlock pairs.
func exprKey(e ast.Expr) string { return types.ExprString(e) }

// funcBodies calls f once per function body in the package: every
// FuncDecl body and every FuncLit body. Analyses that must not leak state
// across function boundaries iterate with this.
func funcBodies(files []*ast.File, f func(body *ast.BlockStmt)) {
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					f(n.Body)
				}
			case *ast.FuncLit:
				f(n.Body)
			}
			return true
		})
	}
}
