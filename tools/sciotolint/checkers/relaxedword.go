package checkers

import (
	"go/ast"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// RelaxedWord flags relaxed atomic access to metadata words that remote
// processes write.
//
// RelaxedLoad64/RelaxedStore64 act on the calling process's own instance
// of a word segment without establishing any ordering (pgas.go documents
// them as legal only for owner-private words, or — loads only — as hints
// revalidated under a lock). In the split queue of internal/core/queue.go
// the word roles are fixed: wTop and wSplit are owner-written, while
// wBottom is advanced by thieves and decremented by remote adders, and
// wDirty is incremented by thieves. A relaxed *store* to a remotely
// written word can silently lose a concurrent remote update; a relaxed
// *load* of one yields a stale value and is only tolerable as an
// explicitly annotated hint.
var RelaxedWord = &analysis.Analyzer{
	Name: "relaxedword",
	Doc: "flags RelaxedLoad64/RelaxedStore64 whose word index is a remotely-written " +
		"metadata word (wBottom, wDirty); relaxed access is only legal on owner-private words",
	Run: runRelaxedWord,
}

// remoteWrittenWords names the metadata-word constants that remote
// processes write. Matching is by constant name so the discipline follows
// the word's role, not its numeric value.
var remoteWrittenWords = map[string]bool{
	"wBottom": true,
	"wDirty":  true,
}

func runRelaxedWord(pass *analysis.Pass) error {
	analysis.Preorder(pass.Files, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := pgasMethod(pass.TypesInfo, call)
		if !ok || (name != "RelaxedLoad64" && name != "RelaxedStore64") {
			return
		}
		if len(call.Args) < 2 {
			return
		}
		c := constName(pass.TypesInfo, call.Args[1])
		if c == "" || !remoteWrittenWords[c] {
			return
		}
		if name == "RelaxedStore64" {
			pass.Reportf(call.Pos(),
				"relaxed store to %s, a word remote processes write; a concurrent remote "+
					"update would be lost — use the ordered Store64", c)
		} else {
			pass.Reportf(call.Pos(),
				"relaxed load of %s, a word remote processes write, returns a stale value; "+
					"use the ordered Load64 or annotate the hint and revalidate under the queue lock", c)
		}
	})
	return nil
}

// constName resolves e to the name of the constant it denotes, or "".
func constName(info *types.Info, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	if c, ok := info.Uses[id].(*types.Const); ok {
		return c.Name()
	}
	return ""
}
