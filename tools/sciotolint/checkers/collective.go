package checkers

import (
	"go/ast"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// Collective flags collective PGAS calls that only some ranks execute.
//
// AllocData, AllocWords, AllocLock, Barrier and World.Run are collective:
// every rank must call them, in the same order (pgas.go requires it, and
// both transports block until all ranks arrive). A collective call nested
// under a branch whose condition depends on p.Rank() is therefore the
// classic SPMD mismatched-collective bug — rank 0 enters the barrier, the
// others never will, and the program silently deadlocks.
var Collective = &analysis.Analyzer{
	Name: "collective",
	Doc: "flags collective Proc calls (AllocData/AllocWords/AllocLock/Barrier/Run) " +
		"reachable only under a rank-conditional branch (SPMD mismatched-collective deadlock)",
	Run: runCollective,
}

var collectiveMethods = map[string]bool{
	"AllocData":  true,
	"AllocWords": true,
	"AllocLock":  true,
	"Barrier":    true,
	"Run":        true, // pgas.World.Run
}

func runCollective(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					collectiveScanFunc(pass, n.Body)
				}
				return false
			case *ast.FuncLit:
				// Reached only for package-level FuncLits (var initializers);
				// lits inside functions are scanned by collectiveScanFunc.
				collectiveScanFunc(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// collectiveScanFunc analyzes one function body. Nested function literals
// are scanned as their own functions: a rank-conditional around a FuncLit
// definition does not imply the literal runs rank-conditionally (it may be
// registered as a task body and executed collectively elsewhere), and vice
// versa.
func collectiveScanFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	rankVars := rankDerivedVars(pass.TypesInfo, body)

	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			collectiveScanFunc(pass, lit.Body)
			return false
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := pgasMethod(pass.TypesInfo, call); ok && collectiveMethods[name] {
				if cond := enclosingRankCond(pass.TypesInfo, rankVars, stack); cond != nil {
					pass.Reportf(call.Pos(),
						"collective %s call is conditional on the process rank; "+
							"ranks not taking this branch never reach it and all ranks deadlock", name)
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// rankDerivedVars collects variables assigned (directly) from p.Rank() in
// this function body, e.g. `me := p.Rank()`.
func rankDerivedVars(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if name, ok := pgasMethod(info, call); !ok || name != "Rank" {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
		return true
	})
	return vars
}

// enclosingRankCond walks the enclosing-node stack (innermost last) and
// returns the first rank-dependent controlling condition, or nil. A node
// guards the call only if the call sits in its controlled body — not in
// the condition or init clause itself.
func enclosingRankCond(info *types.Info, rankVars map[types.Object]bool, stack []ast.Node) ast.Expr {
	for i := len(stack) - 2; i >= 0; i-- {
		inner := stack[i+1]
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if (containsNode(n.Body, inner) || containsNode(n.Else, inner)) &&
				rankCond(info, rankVars, n.Cond) && !branchBalanced(info, n) {
				return n.Cond
			}
		case *ast.ForStmt:
			if n.Cond != nil && containsNode(n.Body, inner) && rankCond(info, rankVars, n.Cond) {
				return n.Cond
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && containsNode(n.Body, inner) && rankCond(info, rankVars, n.Tag) {
				return n.Tag
			}
		case *ast.CaseClause:
			// switch with no tag: `switch { case p.Rank() == 0: ... }`
			for _, e := range n.List {
				if rankCond(info, rankVars, e) && containsStmts(n.Body, inner) {
					return e
				}
			}
		}
	}
	return nil
}

// branchBalanced reports whether a rank-conditional if is nonetheless
// collectively correct because its then and else branches issue the same
// sequence of collective calls — the idiomatic
// `if p.Rank() == 0 { ...; Barrier() } else { Barrier() }` shape, where
// every rank still executes the collectives in the same order.
func branchBalanced(info *types.Info, n *ast.IfStmt) bool {
	if n.Else == nil {
		return false
	}
	thenSeq := collectiveSeq(info, n.Body)
	elseSeq := collectiveSeq(info, n.Else)
	if len(thenSeq) != len(elseSeq) {
		return false
	}
	for i := range thenSeq {
		if thenSeq[i] != elseSeq[i] {
			return false
		}
	}
	return true
}

// collectiveSeq returns the source-order sequence of collective method
// names under n, not descending into nested function literals.
func collectiveSeq(info *types.Info, n ast.Node) []string {
	var seq []string
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok {
			if name, ok := pgasMethod(info, call); ok && collectiveMethods[name] {
				seq = append(seq, name)
			}
		}
		return true
	})
	return seq
}

func containsNode(outer, inner ast.Node) bool {
	if outer == nil || inner == nil {
		return false
	}
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

func containsStmts(list []ast.Stmt, inner ast.Node) bool {
	for _, s := range list {
		if containsNode(s, inner) {
			return true
		}
	}
	return false
}

// rankCond reports whether e mentions p.Rank() or a variable derived from
// it.
func rankCond(info *types.Info, rankVars map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := pgasMethod(info, n); ok && name == "Rank" {
				found = true
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && rankVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}
