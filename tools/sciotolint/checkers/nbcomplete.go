package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// NbComplete flags non-blocking PGAS operations (NbGet, NbPut, NbLoad64,
// NbStore64, NbFetchAdd64) whose handles can escape completion.
//
// A non-blocking operation's results — the dst buffer of an NbGet, the out
// pointer of an NbLoad64/NbFetchAdd64, and the remote visibility of an
// NbPut/NbStore64 — are defined only after Wait(h) or Flush(). Reading a
// dst early is a silent data race with the transport; releasing a PGAS
// lock with operations still in flight publishes half-applied protocol
// state to the next lock holder (the split-queue discipline in
// internal/core/queue.go flushes before every Unlock for exactly this
// reason). The analyzer abstractly interprets each function body, tracking
// the set of pending handles through structured control flow, and reports:
//
//   - an Unlock reached with an operation still pending,
//   - a return reached with an operation still pending,
//   - falling off the end of the function with an operation pending.
//
// Flush() completes every pending operation; Wait(h) completes the one
// bound to h. A handle returned to the caller transfers the obligation
// (the caller is checked at its own call site), and `defer p.Flush()`
// covers return paths — but not an Unlock in the middle of the function,
// which runs before any deferred call. Issuing a batch across loop
// iterations and flushing once after the loop is the intended idiom and is
// not flagged: pending handles are only checked at Unlock, return, and
// function end, never at iteration boundaries.
//
// Methods named after the non-blocking primitives themselves (NbGet, ...,
// Wait, Flush) on a concrete receiver are exempt: they are a transport or
// wrapper (e.g. pgas/faulty) implementing the primitive by delegation, so
// the completion obligation lies with their caller, not inside them.
var NbComplete = &analysis.Analyzer{
	Name: "nbcomplete",
	Doc: "flags non-blocking PGAS operations whose handle is not completed by Wait/Flush " +
		"on every path before an Unlock or function return (results are undefined until completion)",
	Run: runNbComplete,
}

// nbIssuers are the Proc methods that return a pending handle.
var nbIssuers = map[string]bool{
	"NbGet":        true,
	"NbPut":        true,
	"NbLoad64":     true,
	"NbStore64":    true,
	"NbFetchAdd64": true,
}

// nbState is the abstract state: operations issued but not yet completed
// on the current path. Handles bound to a variable are keyed by the
// variable's types.Object (so Wait(h) can complete them); handles whose
// result is discarded are keyed by issue position and can only be
// completed by Flush.
type nbState struct {
	pending       map[any]nbOpInfo
	deferredFlush bool
}

type nbOpInfo struct {
	op  string // method name, for the diagnostic
	pos token.Pos
}

func newNbState() *nbState {
	return &nbState{pending: make(map[any]nbOpInfo)}
}

func (s *nbState) clone() *nbState {
	c := newNbState()
	for k, v := range s.pending {
		c.pending[k] = v
	}
	c.deferredFlush = s.deferredFlush
	return c
}

// merge unions the pending sets of the branch states that can fall
// through, so an operation left incomplete on any branch stays visible.
func (s *nbState) merge(branches ...*nbState) {
	s.pending = make(map[any]nbOpInfo)
	for _, b := range branches {
		for k, v := range b.pending {
			s.pending[k] = v
		}
		s.deferredFlush = s.deferredFlush || b.deferredFlush
	}
}

type nbChecker struct {
	pass *analysis.Pass
}

func runNbComplete(pass *analysis.Pass) error {
	c := &nbChecker{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && !isProcImplMethod(n,
					"NbGet", "NbPut", "NbLoad64", "NbStore64", "NbFetchAdd64", "Wait", "Flush") {
					c.checkFunc(n.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(n.Body)
			}
			return true
		})
	}
	return nil
}

func (c *nbChecker) checkFunc(body *ast.BlockStmt) {
	st := newNbState()
	terminated := c.scan(body.List, st)
	if !terminated && !st.deferredFlush {
		for _, info := range st.pending {
			c.pass.Reportf(info.pos,
				"%s issued here is never completed with Wait or Flush; its results are undefined", info.op)
		}
	}
}

// scan interprets a statement list, mutating st. It reports whether every
// path through the list terminates (returns or panics).
func (c *nbChecker) scan(stmts []ast.Stmt, st *nbState) bool {
	for _, stmt := range stmts {
		if c.scanStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (c *nbChecker) scanStmt(stmt ast.Stmt, st *nbState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		c.scanExpr(s.X, st)
		if isPanic(s.X) {
			return true
		}

	case *ast.AssignStmt:
		// h := p.NbGet(...) binds the handle; _ = p.NbPut(...) or a
		// reassignment through anything else leaves it Flush-only.
		for _, rhs := range s.Rhs {
			c.scanExpr(rhs, st)
		}
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if op, ok := c.nbIssueCall(s.Rhs[0]); ok {
				// scanExpr recorded it position-keyed; rebind to the
				// variable so Wait(h) can complete it.
				delete(st.pending, s.Rhs[0].Pos())
				key := any(s.Rhs[0].Pos())
				if id, isIdent := s.Lhs[0].(*ast.Ident); isIdent && id.Name != "_" {
					if obj := c.obj(id); obj != nil {
						key = obj
					}
				}
				st.pending[key] = nbOpInfo{op: op, pos: s.Rhs[0].Pos()}
			}
		}

	case *ast.DeferStmt:
		// defer p.Flush() covers every return path (but not an Unlock in
		// the middle of the function, which runs before deferred calls).
		if name, ok := pgasMethod(c.pass.TypesInfo, s.Call); ok && name == "Flush" {
			st.deferredFlush = true
		} else if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if name, ok := pgasMethod(c.pass.TypesInfo, call); ok && name == "Flush" {
						st.deferredFlush = true
					}
				}
				return true
			})
		}

	case *ast.ReturnStmt:
		// A returned handle transfers the completion obligation to the
		// caller, where this same analysis sees it.
		for _, res := range s.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := c.obj(id); obj != nil {
					delete(st.pending, obj)
				}
			}
		}
		if !st.deferredFlush {
			for _, info := range st.pending {
				c.pass.Reportf(s.Pos(),
					"return with %s pending (issued at %s); Wait or Flush must complete it first",
					info.op, c.pass.Fset.Position(info.pos))
			}
		}
		return true

	case *ast.BranchStmt:
		return true

	case *ast.BlockStmt:
		return c.scan(s.List, st)

	case *ast.LabeledStmt:
		return c.scanStmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, st)
		}
		c.scanExpr(s.Cond, st)
		thenSt, elseSt := st.clone(), st.clone()
		thenTerm := c.scan(s.Body.List, thenSt)
		elseTerm := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = c.scan(e.List, elseSt)
		case *ast.IfStmt:
			elseTerm = c.scanStmt(e, elseSt)
		}
		var fallthroughs []*nbState
		if !thenTerm {
			fallthroughs = append(fallthroughs, thenSt)
		}
		if !elseTerm {
			fallthroughs = append(fallthroughs, elseSt)
		}
		if len(fallthroughs) == 0 {
			return true
		}
		st.merge(fallthroughs...)

	case *ast.ForStmt:
		if s.Init != nil {
			c.scanStmt(s.Init, st)
		}
		// Batching across iterations with one Flush after the loop is the
		// intended idiom, so pending handles are not checked at iteration
		// boundaries: the loop body's effects simply union into the state
		// after the loop (a Flush inside the body clears the body copy,
		// not the zero-iteration path).
		bodySt := st.clone()
		c.scan(s.Body.List, bodySt)
		st.merge(st.clone(), bodySt)

	case *ast.RangeStmt:
		bodySt := st.clone()
		c.scan(s.Body.List, bodySt)
		st.merge(st.clone(), bodySt)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		var fallthroughs []*nbState
		for _, cl := range body.List {
			var caseBody []ast.Stmt
			switch cl := cl.(type) {
			case *ast.CaseClause:
				caseBody = cl.Body
			case *ast.CommClause:
				caseBody = cl.Body
			}
			caseSt := st.clone()
			if !c.scan(caseBody, caseSt) {
				fallthroughs = append(fallthroughs, caseSt)
			}
		}
		fallthroughs = append(fallthroughs, st.clone())
		st.merge(fallthroughs...)
	}
	return false
}

// scanExpr updates st for the pgas calls inside an expression: Nb issues
// add a pending entry, Wait/Flush complete entries, Unlock reports them.
func (c *nbChecker) scanExpr(e ast.Expr, st *nbState) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	// Inner calls first (e.g. p.Wait(issue(p)) — rare, but keeps order).
	for _, arg := range call.Args {
		c.scanExpr(arg, st)
	}
	name, ok := pgasMethod(c.pass.TypesInfo, call)
	if !ok {
		return
	}
	switch {
	case nbIssuers[name]:
		st.pending[call.Pos()] = nbOpInfo{op: name, pos: call.Pos()}

	case name == "Wait" && len(call.Args) == 1:
		if id, isIdent := call.Args[0].(*ast.Ident); isIdent {
			if obj := c.obj(id); obj != nil {
				delete(st.pending, obj)
			}
		}

	case name == "Flush":
		st.pending = make(map[any]nbOpInfo)

	case name == "Unlock":
		for _, info := range st.pending {
			c.pass.Reportf(call.Pos(),
				"Unlock with %s pending (issued at %s); Flush before releasing the lock, "+
					"or the next holder observes half-applied state",
				info.op, c.pass.Fset.Position(info.pos))
		}
		// Report once; the same leak would otherwise cascade to return.
		st.pending = make(map[any]nbOpInfo)
	}
}

func (c *nbChecker) nbIssueCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	name, ok := pgasMethod(c.pass.TypesInfo, call)
	if !ok || !nbIssuers[name] {
		return "", false
	}
	return name, true
}

func (c *nbChecker) obj(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Uses[id]
}
