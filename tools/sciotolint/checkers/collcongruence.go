package checkers

import (
	"go/ast"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// CollCongruence is the whole-program form of the SPMD
// mismatched-collective check.
//
// The per-package `collective` analyzer only sees a collective call
// sitting syntactically under a rank conditional in the same function.
// Two real bug shapes escape it:
//
//  1. The collective is buried in a callee: `if me == 0 { drain(p) }`
//     where drain, three calls down, hits a Barrier. Every rank except 0
//     skips the barrier and the job deadlocks.
//  2. The rank value flows into the branching function: `helper(p,
//     p.Rank())` where helper branches on its parameter around an
//     AllocWords. Inside helper the condition looks rank-unrelated.
//
// This analyzer computes, over the interprocedural call graph, (a) the
// set of functions that may execute a collective operation and (b) the
// flow of rank-derived values through assignments, helper returns, and
// call arguments. It then flags any call that leads to a collective and
// is controlled by a rank-derived condition. The `collective` analyzer's
// balanced-branch exemption is generalized: an if whose two arms execute
// the same interprocedural sequence of collectives is congruent SPMD and
// legal, even when the collectives are inside different callees.
//
// Calls that the intraprocedural analyzer already reports (a direct
// collective under a syntactically visible rank condition) are not
// re-reported here.
var CollCongruence = &analysis.Analyzer{
	Name: "collcongruence",
	Doc: "flags call chains that reach a collective operation (Barrier/Alloc*/Run) under " +
		"rank-dependent control flow anywhere in the interprocedural call graph " +
		"(whole-program SPMD divergence deadlock)",
	RunProgram: runCollCongruence,
}

func runCollCongruence(pass *analysis.ProgramPass) error {
	c := &ccChecker{
		pass:       pass,
		prog:       pass.Prog,
		taint:      computeRankTaint(pass.Prog),
		seqMemo:    make(map[*analysis.Func]seqResult),
		inProgress: make(map[*analysis.Func]bool),
	}
	c.reaches = c.prog.FixpointBool(func(f *analysis.Func) bool {
		return len(directCollectives(f)) > 0
	})
	for _, f := range c.prog.SortedFuncs() {
		c.checkFunc(f)
	}
	return nil
}

type seqResult struct {
	seq []string
	ok  bool
}

type ccChecker struct {
	pass       *analysis.ProgramPass
	prog       *analysis.Program
	taint      *rankTaint
	reaches    map[*analysis.Func]bool
	seqMemo    map[*analysis.Func]seqResult
	inProgress map[*analysis.Func]bool
}

// directCollectives returns the collective pgas method names called
// directly in f's body (not through callees, not in nested literals).
func directCollectives(f *analysis.Func) []string {
	var out []string
	ast.Inspect(f.Body(), func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != f.Lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := pgasMethod(f.Pkg.Info, call); ok && collectiveMethods[name] {
				out = append(out, name)
			}
		}
		return true
	})
	return out
}

// checkFunc walks one function body with the enclosing-node stack and
// reports rank-conditional collective-reaching calls.
func (c *ccChecker) checkFunc(f *analysis.Func) {
	info := f.Pkg.Info
	intraVars := rankDerivedVars(info, f.Body())

	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != f.Lit {
			return false // a literal is its own function in the program
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok {
			c.checkCall(f, intraVars, call, stack)
		}
		return true
	}
	ast.Inspect(f.Body(), visit)
}

func (c *ccChecker) checkCall(f *analysis.Func, intraVars map[types.Object]bool, call *ast.CallExpr, stack []ast.Node) {
	info := f.Pkg.Info
	if name, ok := pgasMethod(info, call); ok && collectiveMethods[name] {
		// The per-package `collective` analyzer already reports this call
		// when the rank condition is syntactically visible in this
		// function; only report here when the rank-ness arrives through
		// interprocedural data flow.
		if enclosingRankCond(info, intraVars, stack) != nil {
			return
		}
		if cond := c.enclosingRankCondInter(f, stack); cond != nil {
			c.pass.Reportf(call.Pos(),
				"collective %s call is conditional on a rank-derived value that flows in "+
					"through calls or returns; ranks not taking this branch never reach it "+
					"and all ranks deadlock", name)
		}
		return
	}
	callee := c.prog.ResolveCall(f.Pkg, call)
	if callee == nil || !c.reaches[callee] {
		return
	}
	if cond := c.enclosingRankCondInter(f, stack); cond != nil {
		c.pass.Reportf(call.Pos(),
			"call to %s, which transitively executes collective operations, is conditional "+
				"on the process rank; ranks not taking this branch never reach the collective "+
				"and all ranks deadlock", callee)
	}
}

// enclosingRankCondInter is enclosingRankCond with both halves widened to
// whole-program knowledge: conditions are rank-dependent when any
// rank-derived value (including callee returns and tainted parameters)
// appears in them, and an if is balanced when its arms execute the same
// interprocedural sequence of collectives.
func (c *ccChecker) enclosingRankCondInter(f *analysis.Func, stack []ast.Node) ast.Expr {
	rank := func(e ast.Expr) bool { return c.taint.rankExpr(c.prog, f, e) }
	for i := len(stack) - 2; i >= 0; i-- {
		inner := stack[i+1]
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if (containsNode(n.Body, inner) || containsNode(n.Else, inner)) &&
				rank(n.Cond) && !c.branchBalancedInter(f, n) {
				return n.Cond
			}
		case *ast.ForStmt:
			if n.Cond != nil && containsNode(n.Body, inner) && rank(n.Cond) {
				return n.Cond
			}
		case *ast.SwitchStmt:
			if n.Tag != nil && containsNode(n.Body, inner) && rank(n.Tag) {
				return n.Tag
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if rank(e) && containsStmts(n.Body, inner) {
					return e
				}
			}
		}
	}
	return nil
}

// branchBalancedInter reports whether a rank-conditional if is congruent
// because both arms execute the same interprocedural sequence of
// collectives — `if me == 0 { flushAndBarrier(p) } else { p.Barrier() }`
// is legal SPMD when flushAndBarrier ends in exactly one Barrier.
func (c *ccChecker) branchBalancedInter(f *analysis.Func, n *ast.IfStmt) bool {
	if n.Else == nil {
		// No else arm: balanced only if the then arm provably executes no
		// collectives at all (then the condition guards nothing we care
		// about — but then no report fires anyway, so require an else).
		return false
	}
	thenSeq, ok1 := c.nodeSeq(f, n.Body)
	elseSeq, ok2 := c.nodeSeq(f, n.Else)
	return ok1 && ok2 && equalSeq(thenSeq, elseSeq)
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// funcSeq returns the interprocedural collective sequence a call to f
// executes, memoized. ok is false when the sequence is input-dependent
// (unbalanced conditionals, loops or recursion around collectives) —
// callers must then treat the function as collective-varying.
func (c *ccChecker) funcSeq(f *analysis.Func) ([]string, bool) {
	if r, done := c.seqMemo[f]; done {
		return r.seq, r.ok
	}
	if c.inProgress[f] {
		return nil, !c.reaches[f] // recursion: unknown iff collectives are in play
	}
	c.inProgress[f] = true
	seq, ok := c.nodeSeq(f, f.Body())
	delete(c.inProgress, f)
	c.seqMemo[f] = seqResult{seq, ok}
	return seq, ok
}

// nodeSeq computes the ordered collective sequence executed by n inside
// f, following calls into known callees. ok is false when the sequence
// cannot be determined statically. Constructs that execute a
// data-dependent number of times (loops, switches, selects) make the
// sequence unknown only when collectives are reachable inside them.
func (c *ccChecker) nodeSeq(f *analysis.Func, n ast.Node) (seq []string, ok bool) {
	ok = true
	add := func(s []string, o bool) {
		seq = append(seq, s...)
		ok = ok && o
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if !ok || n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != f.Lit {
				return false // defining a literal executes nothing
			}
		case *ast.IfStmt:
			if n.Init != nil {
				add(c.nodeSeq(f, n.Init))
			}
			add(c.nodeSeq(f, n.Cond))
			thenSeq, o1 := c.nodeSeq(f, n.Body)
			var elseSeq []string
			o2 := true
			if n.Else != nil {
				elseSeq, o2 = c.nodeSeq(f, n.Else)
			}
			switch {
			case o1 && o2 && equalSeq(thenSeq, elseSeq):
				add(thenSeq, true)
			case o1 && o2 && len(thenSeq) == 0 && len(elseSeq) == 0:
				// no collectives either way
			default:
				ok = false
			}
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Iteration count / arm choice is data-dependent: any
			// reachable collective inside makes the sequence unknown.
			if c.nodeReachesCollective(f, n) {
				ok = false
			}
			return false
		case *ast.CallExpr:
			for _, arg := range n.Args {
				add(c.nodeSeq(f, arg))
			}
			add(c.nodeSeq(f, n.Fun))
			if name, isPgas := pgasMethod(f.Pkg.Info, n); isPgas && collectiveMethods[name] {
				seq = append(seq, name)
			} else if callee := c.prog.ResolveCall(f.Pkg, n); callee != nil {
				if s, o := c.funcSeq(callee); o {
					seq = append(seq, s...)
				} else {
					ok = false
				}
			}
			return false
		}
		return true
	}
	ast.Inspect(n, visit)
	return seq, ok
}

// nodeReachesCollective reports whether any collective is reachable from
// code under n (directly or through known callees).
func (c *ccChecker) nodeReachesCollective(f *analysis.Func, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(child ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := child.(*ast.FuncLit); ok && lit != f.Lit {
			return false
		}
		if call, ok := child.(*ast.CallExpr); ok {
			if name, isPgas := pgasMethod(f.Pkg.Info, call); isPgas && collectiveMethods[name] {
				found = true
				return false
			}
			if callee := c.prog.ResolveCall(f.Pkg, call); callee != nil && c.reaches[callee] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
