package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"scioto/tools/sciotolint/analysis"
)

// LockOrder flags cycles in the interprocedural PGAS lock-acquisition
// order graph.
//
// lockbalance proves each function releases what it acquires; it says
// nothing about two functions that are each locally correct but acquire
// two lock classes in opposite orders. With PGAS locks the deadlock is
// cross-rank: rank 0 holds its queue lock and blocks acquiring rank 1's,
// while rank 1 holds its own and blocks acquiring rank 0's — classic
// AB/BA, invisible to any per-function or even per-package check when
// the two acquisitions live in different call chains.
//
// The analyzer abstracts each p.Lock(proc, id) to a lock *class* derived
// from the id argument (a struct field selector becomes
// "(pkg.Type).field", a package-level variable its qualified name), scans
// every function in source order tracking the classes held, and adds an
// edge A -> B whenever B is acquired — directly or anywhere inside a
// called function, using a transitive acquisition summary — while A is
// held. A cycle among the edges means some interleaving of ranks
// deadlocks; every acquisition participating in a cycle is reported.
//
// TryLock never blocks, so acquiring via TryLock adds no incoming edge —
// but the lock it takes is held, so blocking acquisitions made under it
// still add outgoing edges.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flags cycles in the interprocedural PGAS lock-acquisition order graph " +
		"(two ranks taking the same lock classes in opposite orders deadlock)",
	RunProgram: runLockOrder,
}

// A loEdge records one "B acquired while A held" observation.
type loEdge struct {
	from, to string
	pos      token.Pos // the acquisition (or call) creating the edge
	via      string    // "" for a direct Lock, else the callee name
}

type loChecker struct {
	pass  *analysis.ProgramPass
	prog  *analysis.Program
	acq   map[*analysis.Func]map[string]bool // transitive blocking acquisitions
	edges []loEdge
	seen  map[loEdgeKey]bool // dedupe identical observations at one site
}

// loEdgeKey dedupes edges per acquisition site, so every location that
// participates in a cycle is reported, not just the first-seen edge.
type loEdgeKey struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *analysis.ProgramPass) error {
	c := &loChecker{
		pass: pass,
		prog: pass.Prog,
		seen: make(map[loEdgeKey]bool),
	}
	c.acq = c.prog.FixpointSet(func(f *analysis.Func) []string {
		return c.directLockClasses(f)
	})
	for _, f := range c.prog.SortedFuncs() {
		c.collectEdges(f)
	}
	c.reportCycles()
	return nil
}

// directLockClasses returns the classes f acquires with blocking Lock
// calls directly in its body (TryLock excluded: it cannot be the waiting
// side of a deadlock).
func (c *loChecker) directLockClasses(f *analysis.Func) []string {
	var out []string
	ast.Inspect(f.Body(), func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != f.Lit {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := pgasMethod(f.Pkg.Info, call); ok && name == "Lock" && len(call.Args) == 2 {
				out = append(out, lockClass(f, call.Args[1]))
			}
		}
		return true
	})
	return out
}

// collectEdges scans f in source order, tracking held lock classes as
// position windows: a blocking Lock holds from the call to the matching
// Unlock (or the end of the function), `if p.TryLock(a,b) { ... }` holds
// inside the if body, `if !p.TryLock(a,b) { bail }` holds after the if,
// and a deferred Unlock releases nothing early. An acquisition (direct or
// inside a called function, per the transitive summary) that falls in
// another class's window adds an order edge.
func (c *loChecker) collectEdges(f *analysis.Func) {
	type heldWindow struct {
		class      string
		start, end token.Pos
	}
	bodyEnd := f.Body().End()
	var held []heldWindow
	addEdges := func(to string, at token.Pos, via string) {
		for _, h := range held {
			if at < h.start || at >= h.end {
				continue
			}
			key := loEdgeKey{from: h.class, to: to, pos: at}
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
			c.edges = append(c.edges, loEdge{from: h.class, to: to, pos: at, via: via})
		}
	}
	// TryLock calls consumed by an enclosing if condition, and Unlock
	// calls under defer (which release only at return).
	consumed := make(map[*ast.CallExpr]bool)
	ast.Inspect(f.Body(), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != f.Lit {
				return false
			}
		case *ast.DeferStmt:
			if name, isPgas := pgasMethod(f.Pkg.Info, n.Call); isPgas && name == "Unlock" {
				consumed[n.Call] = true
			}
		case *ast.IfStmt:
			if call, negated, ok := tryLockCond(f, n.Cond); ok {
				consumed[call] = true
				class := lockClass(f, call.Args[1])
				if negated {
					// Failure path bails inside the if; held afterwards.
					held = append(held, heldWindow{class, n.End(), bodyEnd})
				} else {
					held = append(held, heldWindow{class, n.Body.Pos(), n.Body.End()})
				}
			}
		case *ast.CallExpr:
			call := n
			if name, isPgas := pgasMethod(f.Pkg.Info, call); isPgas && len(call.Args) == 2 {
				switch name {
				case "Lock":
					class := lockClass(f, call.Args[1])
					addEdges(class, call.Pos(), "")
					held = append(held, heldWindow{class, call.Pos(), bodyEnd})
					return true
				case "TryLock":
					// Non-blocking: no incoming edge. Outside the
					// recognized if-idioms, held conservatively from here
					// on.
					if !consumed[call] {
						held = append(held, heldWindow{lockClass(f, call.Args[1]), call.End(), bodyEnd})
					}
					return true
				case "Unlock":
					if consumed[call] {
						return true
					}
					class := lockClass(f, call.Args[1])
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].class == class && held[i].start <= call.Pos() && call.Pos() < held[i].end {
							held[i].end = call.Pos()
							break
						}
					}
					return true
				}
			}
			if callee := c.prog.ResolveCall(f.Pkg, call); callee != nil {
				targets := make([]string, 0, len(c.acq[callee]))
				for class := range c.acq[callee] {
					targets = append(targets, class)
				}
				sort.Strings(targets)
				for _, class := range targets {
					addEdges(class, call.Pos(), callee.String())
				}
			}
		}
		return true
	})
}

// tryLockCond recognizes `p.TryLock(a, b)` and `!p.TryLock(a, b)` as an
// if condition, returning the call and whether it is negated.
func tryLockCond(f *analysis.Func, cond ast.Expr) (*ast.CallExpr, bool, bool) {
	if un, ok := ast.Unparen(cond).(*ast.UnaryExpr); ok && un.Op == token.NOT {
		call, _, ok := tryLockCond(f, un.X)
		return call, true, ok
	}
	if call, ok := ast.Unparen(cond).(*ast.CallExpr); ok {
		if name, isPgas := pgasMethod(f.Pkg.Info, call); isPgas && name == "TryLock" && len(call.Args) == 2 {
			return call, false, true
		}
	}
	return nil, false, false
}

// reportCycles finds strongly connected components of the edge graph and
// reports every edge inside a multi-node component, plus self-edges.
func (c *loChecker) reportCycles() {
	scc := tarjanSCC(c.edges)
	for _, e := range c.edges {
		inCycle := e.from == e.to || (scc[e.from] == scc[e.to] && sccSize(scc, scc[e.from]) > 1)
		if !inCycle {
			continue
		}
		where := "here"
		if e.via != "" {
			where = "inside the call to " + e.via
		}
		if e.from == e.to {
			c.pass.Reportf(e.pos,
				"lock class %s acquired %s while another lock of the same class is already held; "+
					"two ranks doing this against each other's locks deadlock", e.to, where)
			continue
		}
		cycle := cycleMembers(scc, scc[e.from])
		c.pass.Reportf(e.pos,
			"lock %s acquired %s while %s is held, completing a lock-order cycle (%s); "+
				"ranks interleaving these paths in opposite orders deadlock",
			e.to, where, e.from, strings.Join(cycle, " -> "))
	}
}

func sccSize(scc map[string]int, id int) int {
	n := 0
	for _, v := range scc {
		if v == id {
			n++
		}
	}
	return n
}

func cycleMembers(scc map[string]int, id int) []string {
	var out []string
	for class, v := range scc {
		if v == id {
			out = append(out, class)
		}
	}
	sort.Strings(out)
	return out
}

// tarjanSCC assigns each lock class a strongly-connected-component id.
func tarjanSCC(edges []loEdge) map[string]int {
	succ := make(map[string][]string)
	nodes := make(map[string]bool)
	for _, e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	var order []string
	for n := range nodes {
		order = append(order, n)
	}
	sort.Strings(order)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, nComp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = nComp
				if w == v {
					break
				}
			}
			nComp++
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}

// lockClass abstracts a Lock/Unlock id argument to a cross-function lock
// class. Struct fields and package-level names identify classes globally;
// anything local falls back to a per-function key (still useful for
// self-edges within one function).
func lockClass(f *analysis.Func, e ast.Expr) string {
	info := f.Pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			t := sel.Recv()
			for {
				ptr, ok := t.(*types.Pointer)
				if !ok {
					break
				}
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return "(" + named.Obj().Pkg().Name() + "." + named.Obj().Name() + ")." + sel.Obj().Name()
			}
		}
		if obj := info.Uses[e.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj := useOrDef(info, e); obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return f.Key + "$" + obj.Name()
		}
	}
	return f.Key + "$" + exprKey(e)
}
