// Package obs is the fixture stub of scioto/internal/obs. The
// obsdeterminism analyzer matches registration methods by package name
// and method name, so the stub only needs the signatures.
package obs

type Registry struct{}
type Counter struct{}
type Gauge struct{}
type Histogram struct{}

func (r *Registry) Counter(name, help string) *Counter     { return nil }
func (r *Registry) Gauge(name, help string) *Gauge         { return nil }
func (r *Registry) Histogram(name, help string) *Histogram { return nil }
