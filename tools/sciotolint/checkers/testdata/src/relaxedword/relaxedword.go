// Fixtures for the relaxedword analyzer: relaxed atomic access to
// metadata words that remote processes write. The constant names mirror
// the split-queue layout of internal/core/queue.go.
package relaxedword

import "pgas"

const (
	wBottom = 0 // steal end: advanced by thieves, decremented by remote adders
	wSplit  = 1 // owner-written
	wTop    = 2 // owner-written
	wDirty  = 3 // incremented by thieves
)

// Relaxed stores to remotely-written words can lose concurrent remote
// updates; this reproduces the wDirty violation class.
func badStores(p pgas.Proc, meta pgas.Seg) {
	p.RelaxedStore64(meta, wBottom, 1) // want `relaxed store to wBottom, a word remote processes write`
	p.RelaxedStore64(meta, wDirty, 1)  // want `relaxed store to wDirty, a word remote processes write`
}

// Relaxed loads of remotely-written words yield stale values.
func badLoads(p pgas.Proc, meta pgas.Seg) int64 {
	a := p.RelaxedLoad64(meta, wBottom) // want `relaxed load of wBottom, a word remote processes write`
	b := p.RelaxedLoad64(meta, wDirty)  // want `relaxed load of wDirty, a word remote processes write`
	return a + b
}

// Owner-private words are exactly what the relaxed operations are for.
func goodOwnerWords(p pgas.Proc, meta pgas.Seg) int64 {
	p.RelaxedStore64(meta, wTop, 7)
	return p.RelaxedLoad64(meta, wTop) - p.RelaxedLoad64(meta, wSplit)
}

// Ordered operations on remotely-written words are always legal.
func goodOrdered(p pgas.Proc, meta pgas.Seg) int64 {
	p.Store64(p.Rank(), meta, wBottom, 0)
	return p.Load64(p.Rank(), meta, wDirty)
}
