// Fixtures for the journalappend analyzer: queue insertions must be
// paired with a work-replay journal append, mirroring the discipline of
// internal/core (journalize before pushPrivate/pushLocked/addRemote).
package journalappend

// queue stands in for core.taskQueue; its methods are the raw primitives.
type queue struct{ n int }

func (q *queue) pushPrivate(wire []byte) bool   { q.n++; return true }
func (q *queue) pushLocked(wire []byte) bool    { q.n++; return true }
func (q *queue) addRemote(p int, w []byte) bool { q.n++; return true }
func (q *queue) popPrivate() ([]byte, bool)     { return nil, false }

// tc stands in for core.TC, with the journal witnesses.
type tc struct {
	q  *queue
	jn *journal
}

type journal struct{ b []byte }

func (j *journal) slotBytes(s int) []byte { return j.b }

func (t *tc) journalize(wire []byte)            {}
func (t *tc) journalizePending(wire []byte) int { return 0 }

// goodAdd journals before pushing: the canonical insert path.
func (t *tc) goodAdd(wire []byte) {
	t.journalize(wire)
	t.q.pushPrivate(wire)
}

// goodDeferred uses the pending-state witness.
func (t *tc) goodDeferred(wire []byte) {
	t.journalizePending(wire)
	t.q.addRemote(1, wire)
}

// goodReplay re-inserts bytes read back out of the journal — already
// recorded, so slotBytes discharges the obligation.
func (t *tc) goodReplay(s int) {
	t.q.pushLocked(t.jn.slotBytes(s))
}

// goodClosure journals in the outer body and pushes from a literal: the
// obligation is checked at declaration granularity.
func (t *tc) goodClosure(wire []byte) func() {
	t.journalize(wire)
	return func() { t.q.pushPrivate(wire) }
}

// badPush inserts with no journal append anywhere on the path.
func (t *tc) badPush(wire []byte) {
	t.q.pushPrivate(wire) // want `queue mutation pushPrivate in badPush with no journal append`
}

// badRemote loses the descriptor to recovery just the same.
func badRemote(t *tc, wire []byte) {
	t.q.addRemote(2, wire) // want `queue mutation addRemote in badRemote with no journal append`
}

// requeue re-inserts an already-journaled descriptor: its own body is
// exempt, and the obligation propagates to every caller.
//
//scioto:journaled callers pass descriptors that already carry a journal record
func (t *tc) requeue(wire []byte) {
	if !t.q.pushPrivate(wire) {
		t.q.pushLocked(wire)
	}
}

// goodCaller discharges the propagated obligation locally.
func (t *tc) goodCaller(wire []byte) {
	t.journalize(wire)
	t.requeue(wire)
}

// badCaller hits the propagated obligation: calling a journaled-by-caller
// function is itself a queue mutation.
func (t *tc) badCaller(wire []byte) {
	t.requeue(wire) // want `queue mutation requeue in badCaller with no journal append`
}

// bench measures the raw primitives outside the journal discipline.
//
//scioto:journal-exempt raw-queue microbenchmark; no TC, no journal
func bench(q *queue, wire []byte) {
	for i := 0; i < 100; i++ {
		q.pushPrivate(wire)
	}
}

// staleExempt waives an obligation it does not have.
//
//scioto:journal-exempt nothing here actually pushes
func staleExempt(q *queue) bool { // want `stale //scioto:journal-exempt directive on staleExempt`
	_, ok := q.popPrivate()
	return ok
}

// staleJournaled propagates an obligation it does not create.
//
//scioto:journaled no descriptor ever enters a queue here
func staleJournaled(t *tc) { // want `stale //scioto:journaled directive on staleJournaled`
	_ = t.q.n
}

// malformed directives are reported where they stand.
//
//scioto:journaled
func malformedMark(t *tc, wire []byte) { // want `malformed //scioto:journaled directive`
	t.journalize(wire)
	t.q.pushPrivate(wire)
}
