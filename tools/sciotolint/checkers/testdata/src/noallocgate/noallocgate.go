// Fixtures for the noallocgate analyzer. This package deliberately
// imports nothing: the analyzer recompiles the fixture with
// `go tool compile -m`, and an empty importcfg only resolves an
// import-free unit.
package noallocgate

var sink []byte
var sunk *int

// Positive: the compiler's escape analysis heap-allocates the buffer.
//
//scioto:noalloc
func badAlloc(n int) {
	b := make([]byte, n) // want `heap allocation in //scioto:noalloc function badAlloc`
	sink = b
}

// Positive: a local moved to the heap by escape analysis counts too.
//
//scioto:noalloc
func badMoved() {
	x := 42 // want `heap allocation in //scioto:noalloc function badMoved`
	sunk = &x
}

// Negative: allocation-free body.
//
//scioto:noalloc
func okNoAlloc(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Negative: allocates, but makes no promise.
func unannotated(n int) {
	sink = make([]byte, n)
}

// Negative: a justified waiver covers the allocating line below it.
//
//scioto:noalloc
func waived(n int) {
	//scioto:alloc-ok warm-up growth of the reusable buffer, amortized to zero
	sink = make([]byte, n)
}

// Positive: a waiver that waives nothing is stale and must be deleted.
//
//scioto:noalloc
func staleWaiver(xs []int) int {
	s := 0
	//scioto:alloc-ok nothing allocates on the next line // want `stale //scioto:alloc-ok`
	for _, x := range xs {
		s += x
	}
	return s
}
