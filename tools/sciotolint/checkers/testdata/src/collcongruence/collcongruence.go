// Fixtures for the collcongruence analyzer: collectives reached under
// rank-dependent control flow through the interprocedural call graph.
package collcongruence

import "pgas"

// rankOf launders the rank through a helper return.
func rankOf(p pgas.Proc) int { return p.Rank() }

// barrierDeep reaches a collective two calls down.
func barrierDeep(p pgas.Proc) { drain(p) }
func drain(p pgas.Proc)       { p.Flush(); p.Barrier() }

// Positive: a call chain reaching a Barrier under a direct rank condition.
func callUnderRankCond(p pgas.Proc) {
	if p.Rank() == 0 {
		barrierDeep(p) // want `transitively executes collective operations`
	}
}

// Positive: the rank arrives through a helper return; the direct
// collective is invisible to the intraprocedural analyzer.
func taintedLocal(p pgas.Proc) {
	me := rankOf(p)
	if me == 0 {
		p.Barrier() // want `rank-derived value that flows in through calls or returns`
	}
}

// Positive: the rank flows into a parameter; inside helper the condition
// looks rank-unrelated.
func passesRank(p pgas.Proc) {
	helper(p, p.Rank())
}

func helper(p pgas.Proc, r int) {
	if r == 0 {
		p.AllocWords(1) // want `rank-derived value that flows in through calls or returns`
	}
}

// Wrapper shape (instr/faulty style): a concrete type delegating to an
// inner pgas.Proc. The analyzer must see through the wrapper method.
type wrapProc struct{ inner pgas.Proc }

func (w *wrapProc) Barrier() { w.inner.Barrier() }

func callsWrapper(p pgas.Proc, w *wrapProc) {
	if p.Rank() == 0 {
		w.Barrier() // want `transitively executes collective operations`
	}
}

// Negative: every rank takes the same collective sequence — balanced
// across the call graph even though the arms differ syntactically.
func flushAndBarrier(p pgas.Proc) { p.Flush(); p.Barrier() }

func balancedArms(p pgas.Proc) {
	me := rankOf(p)
	if me == 0 {
		flushAndBarrier(p)
	} else {
		p.Barrier()
	}
}

// Negative: rank-conditional code with no collective anywhere below.
func rankNoCollective(p pgas.Proc) {
	if p.Rank() == 0 {
		println("root")
	}
}

// Negative: unconditional call chain to a collective.
func unconditional(p pgas.Proc) {
	barrierDeep(p)
}

// Negative: a literal defined under a rank condition is its own function;
// defining it runs nothing (it may be a task body executed collectively
// elsewhere).
func definesLit(p pgas.Proc) {
	me := rankOf(p)
	if me == 0 {
		body := func() { p.Barrier() }
		_ = body
	}
}
