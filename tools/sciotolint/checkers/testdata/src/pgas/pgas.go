// Package pgas is the fixture stub of scioto/internal/pgas. The analyzers
// match PGAS methods by package name and method name, so this stub only
// needs the signatures the checkers look at — behavior is irrelevant.
package pgas

type Seg int
type LockID int
type Nb uint64

const NbDone Nb = 0

type World interface {
	NProcs() int
	Run(body func(p Proc)) error
}

type Proc interface {
	Rank() int
	NProcs() int
	Barrier()

	AllocData(nbytes int) Seg
	AllocWords(nwords int) Seg
	AllocLock() LockID

	Get(dst []byte, proc int, seg Seg, off int)
	Put(proc int, seg Seg, off int, src []byte)
	Local(seg Seg) []byte

	Load64(proc int, seg Seg, idx int) int64
	Store64(proc int, seg Seg, idx int, val int64)
	FetchAdd64(proc int, seg Seg, idx int, delta int64) int64
	CAS64(proc int, seg Seg, idx int, old, new int64) bool
	RelaxedLoad64(seg Seg, idx int) int64
	RelaxedStore64(seg Seg, idx int, val int64)

	NbGet(dst []byte, proc int, seg Seg, off int) Nb
	NbPut(proc int, seg Seg, off int, src []byte) Nb
	NbLoad64(proc int, seg Seg, idx int, out *int64) Nb
	NbStore64(proc int, seg Seg, idx int, val int64) Nb
	NbFetchAdd64(proc int, seg Seg, idx int, delta int64, old *int64) Nb
	Wait(h Nb)
	Flush()

	Lock(proc int, id LockID)
	TryLock(proc int, id LockID) bool
	Unlock(proc int, id LockID)
}
