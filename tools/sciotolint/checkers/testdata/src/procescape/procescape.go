// Fixtures for the procescape analyzer: pgas.Proc values leaving the
// goroutine World.Run delivered them to.
package procescape

import "pgas"

var leaked pgas.Proc

func worker(p pgas.Proc) { p.Barrier() }

// Passing the Proc to a new goroutine violates the single-goroutine
// contract.
func badGoArg(p pgas.Proc) {
	go worker(p) // want `pgas\.Proc passed to a goroutine`
}

// So does launching a Proc method as a goroutine.
func badGoMethod(p pgas.Proc) {
	go p.Barrier() // want `goroutine launched on a pgas\.Proc method`
}

// Or capturing the Proc in the goroutine's closure.
func badCapture(p pgas.Proc) {
	go func() {
		p.Barrier() // want `goroutine captures pgas\.Proc p`
	}()
}

// A package variable outlives the World.Run body.
func badStore(p pgas.Proc) {
	leaked = p // want `pgas\.Proc stored in package variable leaked`
}

// A channel hands the Proc to whoever receives it.
func badSend(p pgas.Proc, ch chan pgas.Proc) {
	ch <- p // want `pgas\.Proc sent on a channel`
}

// Local aliasing on the same goroutine is fine, and evaluating a Proc
// method *argument* happens before the spawn, on the owning goroutine.
func good(p pgas.Proc) {
	q := p
	q.Barrier()
	go func(n int) { _ = n }(p.NProcs())
}

// Storing a Proc in a struct that stays on the owning goroutine is the
// runtime's own idiom (taskQueue.p) and is deliberately not flagged.
type queue struct {
	p pgas.Proc
}

func goodStruct(p pgas.Proc) *queue {
	return &queue{p: p}
}
