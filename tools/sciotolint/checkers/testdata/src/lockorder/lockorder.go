// Fixtures for the lockorder analyzer: cycles in the interprocedural
// PGAS lock-acquisition order graph.
package lockorder

import "pgas"

type queues struct {
	lockA pgas.LockID
	lockB pgas.LockID
	lockC pgas.LockID
	lockD pgas.LockID
	lockG pgas.LockID
	lockH pgas.LockID
	lockI pgas.LockID
	lockJ pgas.LockID
	lockK pgas.LockID
	lockX pgas.LockID
	lockY pgas.LockID
}

// Positive: classic AB/BA. Each function is locally balanced (lockbalance
// is happy), but two ranks interleaving abOrder and baOrder deadlock.
func abOrder(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockA)
	p.Lock(proc, q.lockB) // want `completing a lock-order cycle`
	p.Unlock(proc, q.lockB)
	p.Unlock(proc, q.lockA)
}

func baOrder(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockB)
	p.Lock(proc, q.lockA) // want `completing a lock-order cycle`
	p.Unlock(proc, q.lockA)
	p.Unlock(proc, q.lockB)
}

// Positive: the second acquisition is buried in a callee; the edge comes
// from the transitive acquisition summary.
func takeD(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockD)
	p.Unlock(proc, q.lockD)
}

func cThenD(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockC)
	takeD(p, q, proc) // want `inside the call to takeD`
	p.Unlock(proc, q.lockC)
}

func dThenC(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockD)
	p.Lock(proc, q.lockC) // want `completing a lock-order cycle`
	p.Unlock(proc, q.lockC)
	p.Unlock(proc, q.lockD)
}

// Positive: same-class nested acquisition through a callee — rank 0
// holding its lock while taking rank 1's lock of the same class, against
// a rank doing the reverse, deadlocks.
func takeG(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockG)
	p.Unlock(proc, q.lockG)
}

func nestedG(p pgas.Proc, q *queues, victim int, proc int) {
	p.Lock(proc, q.lockG)
	takeG(p, q, victim) // want `another lock of the same class`
	p.Unlock(proc, q.lockG)
}

// Negative: TryLock never blocks, so no H->I edge exists and the reverse
// blocking order completes no cycle.
func tryNoEdge(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockH)
	if p.TryLock(proc, q.lockI) {
		p.Unlock(proc, q.lockI)
	}
	p.Unlock(proc, q.lockH)
}

func iThenH(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockI)
	p.Lock(proc, q.lockH)
	p.Unlock(proc, q.lockH)
	p.Unlock(proc, q.lockI)
}

// Positive: but a lock taken by TryLock is held, so a blocking Lock under
// it still creates an outgoing edge (J -> K), and the reverse order
// closes the cycle.
func tryThenBlock(p pgas.Proc, q *queues, proc int) {
	if p.TryLock(proc, q.lockJ) {
		p.Lock(proc, q.lockK) // want `completing a lock-order cycle`
		p.Unlock(proc, q.lockK)
		p.Unlock(proc, q.lockJ)
	}
}

func kThenJ(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockK)
	p.Lock(proc, q.lockJ) // want `completing a lock-order cycle`
	p.Unlock(proc, q.lockJ)
	p.Unlock(proc, q.lockK)
}

// Negative: a consistent X-before-Y order everywhere is cycle-free.
func xyOne(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockX)
	p.Lock(proc, q.lockY)
	p.Unlock(proc, q.lockY)
	p.Unlock(proc, q.lockX)
}

func xyTwo(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockX)
	takeY(p, q, proc)
	p.Unlock(proc, q.lockX)
}

func takeY(p pgas.Proc, q *queues, proc int) {
	p.Lock(proc, q.lockY)
	p.Unlock(proc, q.lockY)
}
