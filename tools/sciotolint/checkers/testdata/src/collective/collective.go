// Fixtures for the collective analyzer: collective Proc calls reachable
// only under rank-conditional control flow.
package collective

import "pgas"

func doRootWork() {}

// A collective directly under `if p.Rank() == 0` deadlocks ranks != 0.
func badBarrier(p pgas.Proc) {
	if p.Rank() == 0 {
		p.Barrier() // want `collective Barrier call is conditional on the process rank`
	}
}

// Rank-derived variables are tracked through assignment.
func badAllocDerived(p pgas.Proc) {
	me := p.Rank()
	if me != 0 {
		_ = p.AllocWords(4) // want `collective AllocWords call is conditional on the process rank`
	}
}

// The else branch of a rank conditional is just as rank-conditional.
func badElse(p pgas.Proc) {
	if p.Rank() == 0 {
		doRootWork()
	} else {
		_ = p.AllocData(64) // want `collective AllocData call is conditional on the process rank`
	}
}

// Rank switches dispatch different ranks to different arms.
func badSwitch(p pgas.Proc) {
	switch p.Rank() {
	case 0:
		_ = p.AllocLock() // want `collective AllocLock call is conditional on the process rank`
	}
}

// A tagless switch over rank comparisons is the same bug.
func badTaglessSwitch(p pgas.Proc) {
	switch {
	case p.Rank() == 0:
		p.Barrier() // want `collective Barrier call is conditional on the process rank`
	}
}

// A rank-bounded loop executes a different number of collectives per rank.
func badLoop(p pgas.Proc) {
	for i := 0; i < p.Rank(); i++ {
		p.Barrier() // want `collective Barrier call is conditional on the process rank`
	}
}

// World.Run is collective with respect to the launching code.
func badRun(w pgas.World, p pgas.Proc) {
	if p.Rank() == 0 {
		_ = w.Run(func(q pgas.Proc) {}) // want `collective Run call is conditional on the process rank`
	}
}

// Both branches issue the same collective sequence: every rank still
// barriers exactly once, in order. Not a bug.
func goodBalanced(p pgas.Proc) {
	if p.Rank() == 0 {
		doRootWork()
		p.Barrier()
	} else {
		p.Barrier()
	}
}

// Rank-conditional non-collective work followed by an unconditional
// collective is the idiomatic SPMD shape.
func goodUnconditional(p pgas.Proc, seg pgas.Seg) {
	if p.Rank() == 0 {
		p.Put(1, seg, 0, []byte{1})
	}
	p.Barrier()
}

// A branch on a non-rank value is taken identically by all ranks.
func goodNonRankCond(p pgas.Proc, enable bool) {
	if enable {
		p.Barrier()
	}
}

// Defining a function literal under a rank conditional does not execute
// it there; the literal body is analyzed as its own function.
func goodFuncLit(p pgas.Proc) {
	if p.Rank() == 0 {
		_ = func() { p.Barrier() }
	}
}
