// Fixtures proving the collective analyzer covers the ipc transport: a
// world constructed by ipc.NewWorld is a pgas.World and its body receives
// an ordinary pgas.Proc, so rank-conditional collectives involving either
// are flagged exactly as on the other transports.
package collective

import (
	"ipc"
	"pgas"
)

// Launching an ipc world only on rank 0 of an enclosing world is the
// mismatched Run bug regardless of transport.
func badIPCRun(p pgas.Proc) {
	w := ipc.NewWorld(ipc.Config{NProcs: 4})
	if p.Rank() == 0 {
		_ = w.Run(func(q pgas.Proc) {}) // want `collective Run call is conditional on the process rank`
	}
}

// Inside an ipc world's body the proc is an ordinary pgas.Proc; a
// rank-conditional Barrier parks the other rank processes on the shared
// epoch word forever.
func badIPCBody() {
	w := ipc.NewWorld(ipc.Config{NProcs: 4})
	_ = w.Run(func(p pgas.Proc) {
		if p.Rank() == 0 {
			p.Barrier() // want `collective Barrier call is conditional on the process rank`
		}
	})
}

// Unconditional collectives on an ipc world are clean, including the
// balanced-branch idiom.
func goodIPC() {
	w := ipc.NewWorld(ipc.Config{NProcs: 2})
	_ = w.Run(func(p pgas.Proc) {
		seg := p.AllocWords(1)
		if p.Rank() == 0 {
			p.Store64(0, seg, 0, 1)
			p.Barrier()
		} else {
			p.Barrier()
		}
	})
}
