// Fixtures proving the collective analyzer covers the tcp transport: a
// world constructed by tcp.NewWorld is a pgas.World and its body receives
// an ordinary pgas.Proc, so rank-conditional collectives involving either
// are flagged exactly as on the other transports.
package collective

import (
	"pgas"
	"tcp"
)

// Launching a tcp world only on rank 0 of an enclosing world is the
// mismatched Run bug regardless of transport.
func badTCPRun(p pgas.Proc) {
	w := tcp.NewWorld(tcp.Config{NProcs: 4})
	if p.Rank() == 0 {
		_ = w.Run(func(q pgas.Proc) {}) // want `collective Run call is conditional on the process rank`
	}
}

// Inside a tcp world's body the proc is an ordinary pgas.Proc; a
// rank-conditional Barrier deadlocks the other rank processes.
func badTCPBody() {
	w := tcp.NewWorld(tcp.Config{NProcs: 4})
	_ = w.Run(func(p pgas.Proc) {
		if p.Rank() == 0 {
			p.Barrier() // want `collective Barrier call is conditional on the process rank`
		}
	})
}

// Unconditional collectives on a tcp world are clean, including the
// balanced-branch idiom.
func goodTCP() {
	w := tcp.NewWorld(tcp.Config{NProcs: 2})
	_ = w.Run(func(p pgas.Proc) {
		seg := p.AllocWords(1)
		if p.Rank() == 0 {
			p.Store64(0, seg, 0, 1)
			p.Barrier()
		} else {
			p.Barrier()
		}
	})
}
