// Fixtures for the obsdeterminism analyzer: instrument registration that
// breaks the schema-hashed cross-rank merge.
package obsdeterminism

import (
	"obs"
	"occ"
	"pgas"
)

// registerOne is an unconditional, fixed-name registering helper; calling
// it unconditionally is fine, calling it divergently is not.
func registerOne(r *obs.Registry) {
	r.Counter("steals_total", "steal attempts")
}

func rankOf(p pgas.Proc) int { return p.Rank() }

// Positive: registration inside a range over a map — iteration order is
// unspecified, so the schema hash differs run to run.
func badMapRange(r *obs.Registry, names map[string]string) {
	for name, help := range names {
		r.Counter(name, help) // want `range over a map`
	}
}

// Positive: a registering call under map iteration is just as broken.
func badMapCall(r *obs.Registry, m map[string]int) {
	for range m {
		registerOne(r) // want `range over a map`
	}
}

// Positive: only rank 0 gets the instrument; the merge rejects the
// others' snapshots.
func badRankCond(p pgas.Proc, r *obs.Registry) {
	if p.Rank() == 0 {
		r.Counter("root_only", "root bookkeeping") // want `conditional on the process rank`
	}
}

// Positive: the rank arrives through a helper return and the
// registration through a callee.
func badRankCall(p pgas.Proc, r *obs.Registry) {
	me := rankOf(p)
	if me != 0 {
		registerOne(r) // want `conditional on the process rank`
	}
}

// Positive: the instrument name is a function of the arguments, so the
// schema depends on dynamic call history.
func badParamName(r *obs.Registry, kind string) {
	r.Counter("fault_"+kind, "faults by kind") // want `depends on the enclosing function's parameters`
}

// Negative: the idiomatic nil-registry guard is not divergence — every
// rank passes the same registry.
func okNilGuard(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("a_total", "a")
	r.Gauge("b_depth", "b")
}

// Negative: iteration over an array is deterministic.
var opNames = [2]string{"op_get", "op_put"}

func okArrayLoop(r *obs.Registry) {
	for i := 0; i < len(opNames); i++ {
		r.Counter(opNames[i], "per-op count")
	}
}

func okArrayRange(r *obs.Registry) {
	for _, name := range opNames {
		r.Counter(name, "per-op count")
	}
}

// Positive: occupancy-buffer creation registers the resource catalogue
// on the registry, so rank-conditional creation diverges the schema like
// any other registration.
func badOccRankCond(p pgas.Proc, r *obs.Registry) {
	if p.Rank() == 0 {
		occ.NewBuffer(p.Rank(), 0, r) // want `conditional on the process rank`
	}
}

// Positive: catalogue registration under map iteration reorders the
// schema run to run (one buffer per map entry is wrong regardless).
func badOccMapRange(r *obs.Registry, m map[string]int) {
	for range m {
		occ.NewBuffer(0, 0, r) // want `range over a map`
	}
}

// Positive: a helper that creates a registered buffer propagates the
// obligation to its callers.
func makeOccBuffer(r *obs.Registry) *occ.Buffer { return occ.NewBuffer(0, 0, r) }

func badOccViaHelper(p pgas.Proc, r *obs.Registry) {
	if p.Rank() != 0 {
		makeOccBuffer(r) // want `conditional on the process rank`
	}
}

// Negative: the intended idiom — one unconditional per-rank buffer; the
// rank-derived *arguments* are fine, only rank-derived control flow
// around the call diverges the schema.
func okOccPerRank(p pgas.Proc, r *obs.Registry) {
	occ.NewBuffer(p.Rank(), 0, r)
}
