// Fixtures for the localescape analyzer: p.Local(seg) slices escaping the
// protocol window that makes direct access safe.
package localescape

import "pgas"

type holder struct {
	buf []byte
}

var global []byte

func consume(b []byte) {}

// Storing the slice in a struct field keeps it alive past the window.
func badField(p pgas.Proc, seg pgas.Seg, h *holder) {
	h.buf = p.Local(seg) // want `Local slice stored in field h\.buf`
}

// Package variables outlive everything.
func badGlobal(p pgas.Proc, seg pgas.Seg) {
	global = p.Local(seg) // want `Local slice stored in package variable global`
}

// Composite literals smuggle the slice into a longer-lived value.
func badComposite(p pgas.Proc, seg pgas.Seg) holder {
	return holder{buf: p.Local(seg)} // want `Local slice stored in a composite literal`
}

// Returning the slice hands it to a caller outside the window.
func badReturn(p pgas.Proc, seg pgas.Seg) []byte {
	return p.Local(seg) // want `Local slice returned from the function`
}

// A goroutine runs concurrently with remote operations on the segment.
func badGoroutine(p pgas.Proc, seg pgas.Seg) {
	loc := p.Local(seg)
	go func() {
		loc[0] = 1 // want `Local slice loc captured by a goroutine`
	}()
}

func badGoArg(p pgas.Proc, seg pgas.Seg) {
	go consume(p.Local(seg)) // want `Local slice passed to a goroutine`
}

// A Barrier ends the protocol phase; the slice must be re-acquired.
func badBarrier(p pgas.Proc, seg pgas.Seg) {
	loc := p.Local(seg)
	loc[0] = 1
	p.Barrier()
	loc[0] = 2 // want `Local slice loc is used across a Barrier`
}

// Use within one phase, then re-acquire after the barrier: the intended
// idiom.
func good(p pgas.Proc, seg pgas.Seg) {
	loc := p.Local(seg)
	loc[0] = 1
	consume(loc)
	p.Barrier()
	loc2 := p.Local(seg)
	loc2[0] = 2
}

// Immediate indexing without binding never escapes.
func goodInline(p pgas.Proc, seg pgas.Seg, wire []byte) {
	copy(p.Local(seg)[:len(wire)], wire)
	p.Barrier()
	_ = p.Local(seg)[0]
}

// A wrapper transport (the shape of pgas/faulty) implements Local by
// delegation: returning inner.Local there is the implementation, not an
// escape.
type wrapper struct{ inner pgas.Proc }

func (w *wrapper) Local(seg pgas.Seg) []byte {
	return w.inner.Local(seg)
}

// A differently named method returning the slice is still an escape.
func (w *wrapper) grab(seg pgas.Seg) []byte {
	return w.inner.Local(seg) // want `Local slice returned from the function`
}
