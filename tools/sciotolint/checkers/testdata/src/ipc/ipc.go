// Package ipc is the fixture stub of scioto/internal/pgas/ipc. The
// analyzers care only that NewWorld returns a pgas.World whose methods are
// declared in package pgas; the shared mapping and rank launching are
// irrelevant.
package ipc

import "pgas"

type Config struct {
	NProcs int
	Seed   int64
}

func NewWorld(cfg Config) pgas.World { return nil }
