// Package tcp is the fixture stub of scioto/internal/pgas/tcp. The
// analyzers care only that NewWorld returns a pgas.World whose methods are
// declared in package pgas; launching and wire behavior are irrelevant.
package tcp

import "pgas"

type Config struct {
	NProcs int
	Seed   int64
}

func NewWorld(cfg Config) pgas.World { return nil }
