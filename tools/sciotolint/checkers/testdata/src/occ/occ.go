// Package occ is the fixture stub of scioto/internal/obs/occ. The
// obsdeterminism analyzer matches the catalogue-registering entry points
// by package name and function name, so the stub only needs signatures.
package occ

import "obs"

type Buffer struct{}

func NewBuffer(rank, capacity int, reg *obs.Registry) *Buffer { return nil }
