// Fixtures for the nbcomplete analyzer: non-blocking PGAS operations whose
// handles can escape completion.
package nbcomplete

import "pgas"

// Reading a dst before Wait: the handle never completes on any path.
func badNeverWaited(p pgas.Proc, seg pgas.Seg, sink *byte) {
	dst := make([]byte, 64)
	p.NbGet(dst, 1, seg, 0) // want `NbGet issued here is never completed`
	*sink = dst[0]
}

// An early return escapes before the pending put completes.
func badReturnPending(p pgas.Proc, seg pgas.Seg, src []byte) {
	h := p.NbPut(1, seg, 0, src)
	if p.NProcs() > 1 {
		return // want `return with NbPut pending`
	}
	p.Wait(h)
}

// Unlock with an operation in flight publishes half-applied state.
func badUnlockPending(p pgas.Proc, seg pgas.Seg, id pgas.LockID) {
	p.Lock(0, id)
	p.NbStore64(0, seg, 0, 7)
	p.Unlock(0, id) // want `Unlock with NbStore64 pending`
}

// A discarded handle can only be completed by Flush; Wait on a different
// handle does not cover it.
func badWrongWait(p pgas.Proc, seg pgas.Seg, src []byte) {
	h := p.NbPut(1, seg, 0, src)
	p.NbPut(1, seg, 64, src) // want `NbPut issued here is never completed`
	p.Wait(h)
}

// Completing on one branch but not the other leaks on the merge.
func badBranchLeak(p pgas.Proc, seg pgas.Seg) {
	var v int64
	h := p.NbLoad64(1, seg, 0, &v) // want `NbLoad64 issued here is never completed`
	if p.Rank() == 0 {
		p.Wait(h)
		h = p.NbLoad64(1, seg, 1, &v)
	}
	_ = v
}

// Wait pins the handle it is given.
func goodWait(p pgas.Proc, seg pgas.Seg) int64 {
	var v int64
	h := p.NbLoad64(1, seg, 0, &v)
	p.Wait(h)
	return v
}

// Flush completes everything pending, bound or discarded.
func goodFlushAll(p pgas.Proc, seg pgas.Seg, src []byte) {
	p.NbPut(1, seg, 0, src)
	p.NbPut(2, seg, 0, src)
	var old int64
	p.NbFetchAdd64(1, seg, 0, 1, &old)
	p.Flush()
	_ = old
}

// The runtime's locked-update discipline: Flush strictly before Unlock.
func goodFlushBeforeUnlock(p pgas.Proc, seg pgas.Seg, id pgas.LockID) {
	p.Lock(0, id)
	p.NbStore64(0, seg, 0, 7)
	p.Flush()
	p.Unlock(0, id)
}

// Batching across loop iterations with one Flush after the loop — the
// shape of steal() in internal/core/queue.go — is the intended idiom.
func goodLoopBatch(p pgas.Proc, seg pgas.Seg, bufs [][]byte) {
	for i, b := range bufs {
		p.NbGet(b, 1, seg, i*64)
	}
	p.Flush()
}

// A returned handle transfers the completion obligation to the caller.
func goodReturnHandle(p pgas.Proc, seg pgas.Seg, src []byte) pgas.Nb {
	h := p.NbPut(1, seg, 0, src)
	return h
}

// defer p.Flush() covers every return path.
func goodDeferFlush(p pgas.Proc, seg pgas.Seg, src []byte) {
	defer p.Flush()
	p.NbPut(1, seg, 0, src)
	if p.NProcs() > 2 {
		p.NbPut(2, seg, 0, src)
		return
	}
}

// Completion on both branches leaves nothing pending at the merge.
func goodBranchComplete(p pgas.Proc, seg pgas.Seg, src []byte) {
	h := p.NbPut(1, seg, 0, src)
	if p.Rank() == 0 {
		p.Wait(h)
	} else {
		p.Flush()
	}
}

// A wrapper transport (the shape of pgas/faulty) implements the
// non-blocking primitives by delegation: the method IS the issue, and the
// completion obligation lies with its caller, so no diagnostic fires.
type wrapper struct{ inner pgas.Proc }

func (w *wrapper) NbPut(proc int, seg pgas.Seg, off int, src []byte) pgas.Nb {
	return w.inner.NbPut(proc, seg, off, src)
}

func (w *wrapper) Wait(h pgas.Nb) { w.inner.Wait(h) }
func (w *wrapper) Flush()         { w.inner.Flush() }

// The exemption is by method name, not by receiver: a differently named
// helper on the same wrapper is an ordinary consumer and is still checked.
func (w *wrapper) leakyHelper(seg pgas.Seg, src []byte) {
	w.inner.NbPut(1, seg, 0, src) // want `NbPut issued here is never completed`
}
