// Fixtures for the lockbalance analyzer: PGAS lock acquisitions with an
// escape path lacking a release.
package lockbalance

import "pgas"

// An early return inside the critical section leaks the lock.
func badReturn(p pgas.Proc, id pgas.LockID) {
	p.Lock(0, id)
	if p.NProcs() > 1 {
		return // want `return with lock \(0, id\) held`
	}
	p.Unlock(0, id)
}

// Falling off the end of the function with the lock held.
func badEnd(p pgas.Proc, id pgas.LockID) {
	p.Lock(0, id) // want `not released on the path falling off the end of the function`
	_ = p.NProcs()
}

// PGAS locks are non-reentrant: re-acquiring on the same path self-deadlocks.
func badReacquire(p pgas.Proc, id pgas.LockID) {
	p.Lock(0, id)
	p.Lock(0, id) // want `re-acquired while already held`
	p.Unlock(0, id)
}

// A successful TryLock whose branch forgets the release.
func badTryLock(p pgas.Proc, id pgas.LockID) {
	if p.TryLock(1, id) { // want `not released on the path falling off the end of the function`
		_ = p.NProcs()
	}
}

// A lock held at the end of a loop iteration deadlocks the next
// iteration's acquire.
func badLoop(p pgas.Proc, id pgas.LockID) {
	for i := 0; i < 3; i++ {
		p.Lock(0, id) // want `acquired in loop body is not released`
		_ = p.NProcs()
	}
}

// Locks on distinct (proc, id) pairs are independent; releasing one does
// not release the other.
func badWrongPair(p pgas.Proc, a, b pgas.LockID) {
	p.Lock(0, a) // want `not released on the path falling off the end of the function`
	p.Unlock(0, b)
}

// Deferred unlock covers every path out.
func goodDefer(p pgas.Proc, id pgas.LockID) {
	p.Lock(0, id)
	defer p.Unlock(0, id)
	if p.NProcs() > 1 {
		return
	}
}

// Deferred unlock inside a closure is recognized too.
func goodDeferClosure(p pgas.Proc, id pgas.LockID) {
	p.Lock(0, id)
	defer func() {
		p.Unlock(0, id)
	}()
	_ = p.NProcs()
}

// Explicit unlock on both the early-out and the fallthrough path — the
// shape of reacquire() in internal/core/queue.go.
func goodBranches(p pgas.Proc, id pgas.LockID) bool {
	p.Lock(0, id)
	if p.NProcs() == 1 {
		p.Unlock(0, id)
		return false
	}
	p.Unlock(0, id)
	return true
}

// The `if !TryLock { return }` guard — the shape of steal() in
// internal/core/queue.go.
func goodTryLockGuard(p pgas.Proc, id pgas.LockID) bool {
	if !p.TryLock(1, id) {
		return false
	}
	_ = p.NProcs()
	p.Unlock(1, id)
	return true
}

// TryLock bound to a variable and branched on.
func goodTryLockVar(p pgas.Proc, id pgas.LockID) {
	ok := p.TryLock(1, id)
	if ok {
		p.Unlock(1, id)
	}
}

// Balanced lock/unlock inside a loop body.
func goodLoop(p pgas.Proc, id pgas.LockID) {
	for i := 0; i < 3; i++ {
		p.Lock(0, id)
		_ = p.NProcs()
		p.Unlock(0, id)
	}
}

// A wrapper transport (the shape of pgas/faulty) implements the lock
// primitives by delegation: the method IS the acquisition, and the
// balance obligation lies with its caller, so no diagnostic fires inside.
type wrapper struct{ inner pgas.Proc }

func (w *wrapper) Lock(proc int, id pgas.LockID) {
	w.inner.Lock(proc, id)
}

func (w *wrapper) TryLock(proc int, id pgas.LockID) bool {
	return w.inner.TryLock(proc, id)
}

func (w *wrapper) Unlock(proc int, id pgas.LockID) {
	w.inner.Unlock(proc, id)
}

// The exemption is by method name, not by receiver: a differently named
// helper on the same wrapper is an ordinary consumer and is still checked.
func (w *wrapper) leakyHelper(id pgas.LockID) {
	w.inner.Lock(0, id) // want `not released on the path falling off the end of the function`
}
