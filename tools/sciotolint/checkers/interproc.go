package checkers

import (
	"go/ast"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// Shared interprocedural machinery for the whole-program analyzers:
// rank-value taint tracking through assignments, helper returns, and call
// arguments. The per-package `collective` analyzer sees only `p.Rank()`
// and variables assigned from it inside one function; the taint engine
// here additionally follows rank values across calls — `me := rankOf(p)`
// and `helper(p, p.Rank())` both taint the places the rank lands — which
// is what turns the SPMD-divergence check into a whole-program property.

// rankTaint holds the fixpoint result: per function, the set of objects
// (locals and parameters) carrying rank-derived values, and whether the
// function returns a rank-derived value.
type rankTaint struct {
	vars        map[*analysis.Func]map[types.Object]bool
	returnsRank map[*analysis.Func]bool
}

// computeRankTaint runs the taint fixpoint over the program. Taint
// sources are calls to the pgas Rank method; taint propagates through
// single-assignment (`me := p.Rank()`), through function returns
// (`func rankOf(p pgas.Proc) int { return p.Rank() }` makes every
// `rankOf(p)` call rank-derived), and through call arguments into callee
// parameters. Function literals are separate functions and do not inherit
// taint from their definition site (their execution context is unknown),
// matching how the call graph treats them.
func computeRankTaint(prog *analysis.Program) *rankTaint {
	t := &rankTaint{
		vars:        make(map[*analysis.Func]map[types.Object]bool),
		returnsRank: make(map[*analysis.Func]bool),
	}
	for _, f := range prog.Funcs {
		t.vars[f] = make(map[types.Object]bool)
	}
	funcs := prog.SortedFuncs()
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			if t.scanFunc(prog, f) {
				changed = true
			}
		}
	}
	return t
}

// rankExpr reports whether e evaluates to a rank-derived value in f under
// the current taint state.
func (t *rankTaint) rankExpr(prog *analysis.Program, f *analysis.Func, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if name, ok := pgasMethod(f.Pkg.Info, n); ok && name == "Rank" {
				found = true
				return false
			}
			if callee := prog.ResolveCall(f.Pkg, n); callee != nil && t.returnsRank[callee] {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := useOrDef(f.Pkg.Info, n); obj != nil && t.vars[f][obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// scanFunc recomputes f's taint facts from the current global state and
// reports whether anything (f's variable set, its returns-rank bit, or a
// callee's parameter taint) changed.
func (t *rankTaint) scanFunc(prog *analysis.Program, f *analysis.Func) bool {
	info := f.Pkg.Info
	changed := false
	mark := func(obj types.Object) {
		if obj != nil && !t.vars[f][obj] {
			t.vars[f][obj] = true
			changed = true
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != f.Lit {
				return false
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if !t.rankExpr(prog, f, rhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						mark(useOrDef(info, id))
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, v := range n.Values {
					if t.rankExpr(prog, f, v) {
						mark(useOrDef(info, n.Names[i]))
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if t.rankExpr(prog, f, res) && !t.returnsRank[f] {
					t.returnsRank[f] = true
					changed = true
				}
			}
		case *ast.CallExpr:
			callee := prog.ResolveCall(f.Pkg, n)
			if callee == nil || callee.Decl == nil {
				break
			}
			params := paramObjects(callee)
			for i, arg := range n.Args {
				if i >= len(params) || params[i] == nil {
					break
				}
				if t.rankExpr(prog, f, arg) && !t.vars[callee][params[i]] {
					t.vars[callee][params[i]] = true
					changed = true
				}
			}
		}
		return true
	}
	ast.Inspect(f.Body(), walk)
	return changed
}

// paramObjects returns the callee's parameter objects in declaration
// order (a variadic tail repeats for the trailing arguments).
func paramObjects(f *analysis.Func) []types.Object {
	var out []types.Object
	if f.Decl == nil || f.Decl.Type.Params == nil {
		return nil
	}
	for _, field := range f.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter: nothing to taint
			continue
		}
		for _, name := range field.Names {
			out = append(out, f.Pkg.Info.Defs[name])
		}
	}
	return out
}

// useOrDef resolves an identifier to its object.
func useOrDef(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// enclosingMapRange walks the enclosing-node stack (innermost last) and
// returns the first `range` statement over a map that contains the
// innermost node in its body, or nil. Map iteration order is
// unspecified, so anything order-sensitive under it differs across ranks
// and runs.
func enclosingMapRange(info *types.Info, stack []ast.Node) *ast.RangeStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		rs, ok := stack[i].(*ast.RangeStmt)
		if !ok || !containsNode(rs.Body, stack[i+1]) {
			continue
		}
		if tv, ok := info.Types[rs.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return rs
			}
		}
	}
	return nil
}
