package checkers

import (
	"go/ast"
	"go/types"

	"scioto/tools/sciotolint/analysis"
)

// ProcEscape flags pgas.Proc values that leave the goroutine World.Run
// delivered them to.
//
// The Proc contract (pgas.go) is explicit: "A Proc must only be used from
// the goroutine that received it from World.Run." Both transports depend
// on it — dsim's cooperative scheduler resumes exactly one goroutine per
// rank, so a Proc method called from a second goroutine corrupts the
// virtual-time ordering; on shm it breaks per-rank state such as the
// deterministic RNG. The analyzer flags a Proc passed as a `go` argument,
// a Proc method receiver in a `go` statement, a Proc captured by a
// goroutine's function literal, a Proc sent on a channel, and a Proc
// stored in a package-level variable. Storing a Proc in a struct field is
// deliberately NOT flagged: runtime objects (queues, task collections)
// carry their rank's Proc for the duration of the Run body, which is
// legal as long as the struct stays on the owning goroutine.
var ProcEscape = &analysis.Analyzer{
	Name: "procescape",
	Doc: "flags a pgas.Proc passed to a goroutine, sent on a channel, or stored in a " +
		"package variable (a Proc is bound to the goroutine World.Run delivered it to)",
	Run: runProcEscape,
}

func runProcEscape(pass *analysis.Pass) error {
	info := pass.TypesInfo
	isProc := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && isProcType(tv.Type)
	}

	analysis.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if isProc(arg) {
					pass.Reportf(arg.Pos(),
						"pgas.Proc passed to a goroutine; a Proc may only be used from the goroutine World.Run delivered it to")
				}
			}
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && isProc(sel.X) {
				pass.Reportf(sel.X.Pos(),
					"goroutine launched on a pgas.Proc method; a Proc may only be used from the goroutine World.Run delivered it to")
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				reportProcCaptures(pass, lit)
			}

		case *ast.SendStmt:
			if isProc(n.Value) {
				pass.Reportf(n.Value.Pos(),
					"pgas.Proc sent on a channel escapes its owning goroutine")
			}

		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isProc(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(rhs.Pos(),
							"pgas.Proc stored in package variable %s escapes the World.Run body", id.Name)
					}
				}
			}
		}
	})
	return nil
}

// reportProcCaptures flags free Proc-typed variables of a goroutine's
// function literal.
func reportProcCaptures(pass *analysis.Pass, lit *ast.FuncLit) {
	info := pass.TypesInfo
	seen := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if obj == nil || !ok || !isProcType(obj.Type()) || seen[obj.Name()] {
			return true
		}
		// Free variable: declared outside the literal.
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			seen[obj.Name()] = true
			pass.Reportf(id.Pos(),
				"goroutine captures pgas.Proc %s; a Proc may only be used from the goroutine World.Run delivered it to", id.Name)
		}
		return true
	})
}
