package scioto_test

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"scioto"
	"scioto/internal/trace"
)

// TestRunWithObservability: the facade wires the whole observability layer
// from one Config field — metrics registries attach to the runtime, the
// live endpoint serves Prometheus text mid-run, and every rank dumps a
// readable trace file when its body returns.
func TestRunWithObservability(t *testing.T) {
	const n = 3
	dir := t.TempDir()

	// The endpoint address is chosen by the kernel (port 0) and announced
	// on stderr; capture stderr through a pipe so the test can find it and
	// scrape while the world is still running.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	savedStderr := os.Stderr
	os.Stderr = pw
	restore := func() {
		if os.Stderr == pw {
			os.Stderr = savedStderr
			pw.Close()
		}
	}
	defer restore()

	scraped := make(chan string, 1) // /metrics body, or an error note
	scrapeErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		found := false
		for sc.Scan() {
			line := sc.Text()
			if found {
				continue // keep draining so writers never block
			}
			const marker = "serving http://"
			i := strings.Index(line, marker)
			if i < 0 {
				continue
			}
			found = true
			url := "http://" + strings.TrimSuffix(line[i+len(marker):], "/metrics")
			go func() {
				resp, err := http.Get(url + "/metrics")
				if err != nil {
					scrapeErr <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					scrapeErr <- fmt.Errorf("GET /metrics: %s", resp.Status)
					return
				}
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					scrapeErr <- err
					return
				}
				scraped <- string(body)
			}()
		}
	}()

	metricsBody := make(chan string, 1)
	cfg := scioto.Config{
		Procs: n,
		Seed:  7,
		Obs: &scioto.ObsConfig{
			Addr:     "127.0.0.1:0",
			TraceDir: dir,
		},
	}
	runErr := scioto.Run(cfg, func(rt *scioto.Runtime) {
		if rt.Registry() == nil {
			panic("Obs set but runtime has no registry")
		}
		if rt.Tracer() == nil {
			panic("TraceDir set but runtime has no tracer")
		}
		tc := scioto.NewTC(rt, scioto.TCConfig{MaxBodySize: 8, ChunkSize: 2})
		h := tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			tc.Proc().Compute(5 * time.Microsecond)
		})
		if rt.Rank() == 0 {
			task := scioto.NewTask(h, 8)
			for i := 0; i < 60; i++ {
				if err := tc.Add(0, scioto.AffinityHigh, task); err != nil {
					panic(err)
				}
			}
		}
		tc.Process()
		// Rank 0 holds the world open until the live scrape lands, so the
		// endpoint is provably reachable mid-run, not just at startup.
		if rt.Rank() == 0 {
			select {
			case body := <-scraped:
				metricsBody <- body
			case err := <-scrapeErr:
				panic(fmt.Sprintf("live scrape failed: %v", err))
			case <-time.After(10 * time.Second):
				panic("timed out waiting for the live /metrics scrape")
			}
		}
		rt.Proc().Barrier()
	})
	restore()
	if runErr != nil {
		t.Fatal(runErr)
	}

	prom := <-metricsBody
	for _, want := range []string{
		`scioto_tasks_executed_total{rank="0"}`,
		`scioto_pgas_op_latency_seconds_bucket`,
		"# TYPE scioto_tasks_executed_total counter",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("live /metrics missing %q", want)
		}
	}

	// Every rank dumped a trace file with scheduler events in it.
	for rank := 0; rank < n; rank++ {
		path := filepath.Join(dir, fmt.Sprintf("trace-rank%04d.json", rank))
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("rank %d trace dump: %v", rank, err)
		}
		d, err := trace.ReadDump(f)
		f.Close()
		if err != nil {
			t.Fatalf("rank %d trace dump unreadable: %v", rank, err)
		}
		if d.Rank != rank {
			t.Errorf("trace file for rank %d records rank %d", rank, d.Rank)
		}
		if len(d.Events) == 0 {
			t.Errorf("rank %d trace dump has no events", rank)
		}
	}
}

// TestRunObsDisabled: without Config.Obs or SCIOTO_OBS_* the observer
// channels stay nil — the zero-overhead default.
func TestRunObsDisabled(t *testing.T) {
	t.Setenv("SCIOTO_OBS_ADDR", "")
	t.Setenv("SCIOTO_OBS_TRACE_DIR", "")
	t.Setenv("SCIOTO_OBS_TRACE_LIMIT", "")
	err := scioto.Run(scioto.Config{Procs: 2, Seed: 3}, func(rt *scioto.Runtime) {
		if rt.Registry() != nil || rt.Tracer() != nil {
			panic("observability must default to off")
		}
		rt.Proc().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestObsFromEnv: the environment fallback mirrors FaultsFromEnv,
// including the ignore-and-warn treatment of malformed values.
func TestObsFromEnv(t *testing.T) {
	t.Setenv(scioto.EnvObsAddr, "")
	t.Setenv(scioto.EnvObsTraceDir, "")
	t.Setenv(scioto.EnvObsTraceLimit, "")
	if _, ok := scioto.ObsFromEnv(); ok {
		t.Fatal("empty environment must not enable observability")
	}

	t.Setenv(scioto.EnvObsAddr, "127.0.0.1:9100")
	t.Setenv(scioto.EnvObsTraceDir, "/tmp/traces")
	t.Setenv(scioto.EnvObsTraceLimit, "4096")
	cfg, ok := scioto.ObsFromEnv()
	if !ok {
		t.Fatal("set environment must enable observability")
	}
	if cfg.Addr != "127.0.0.1:9100" || cfg.TraceDir != "/tmp/traces" || cfg.TraceLimit != 4096 {
		t.Fatalf("env round-trip mismatch: %+v", cfg)
	}

	t.Setenv(scioto.EnvObsAddr, "")
	t.Setenv(scioto.EnvObsTraceDir, "")
	t.Setenv(scioto.EnvObsTraceLimit, "not-a-number")
	cfg, ok = scioto.ObsFromEnv()
	if ok || cfg.TraceLimit != 0 {
		t.Fatalf("malformed trace limit must be ignored, got ok=%v cfg=%+v", ok, cfg)
	}
}

// TestRunEnvEnablesObs: setting only SCIOTO_OBS_TRACE_DIR on an unmodified
// program is enough to get trace dumps.
func TestRunEnvEnablesObs(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(scioto.EnvObsAddr, "")
	t.Setenv(scioto.EnvObsTraceLimit, "")
	t.Setenv(scioto.EnvObsTraceDir, dir)
	err := scioto.Run(scioto.Config{Procs: 2, Transport: scioto.TransportDSim, Seed: 9}, func(rt *scioto.Runtime) {
		if rt.Registry() == nil || rt.Tracer() == nil {
			panic("SCIOTO_OBS_TRACE_DIR must enable the observer")
		}
		tc := scioto.NewTC(rt, scioto.TCConfig{MaxBodySize: 8})
		h := tc.Register(func(tc *scioto.TC, t *scioto.Task) {})
		if rt.Rank() == 0 {
			task := scioto.NewTask(h, 8)
			for i := 0; i < 10; i++ {
				if err := tc.Add(0, scioto.AffinityLow, task); err != nil {
					panic(err)
				}
			}
		}
		tc.Process()
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("trace-rank%04d.json", rank))); err != nil {
			t.Errorf("rank %d trace dump missing: %v", rank, err)
		}
	}
}
