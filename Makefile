GO ?= go

.PHONY: build test race lint vet all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole tree (runtime, transports, facade,
# tools), sized down via -short so it fits an interactive budget; CI runs
# the same target.
race:
	$(GO) test -race -short ./...

# sciotolint enforces the PGAS and split-queue invariants (see DESIGN.md).
# It exits 2 on findings, so this target fails the build when the tree
# violates an invariant without a justified //lint:ignore.
lint:
	$(GO) run ./tools/sciotolint ./...

vet:
	$(GO) vet ./...
