GO ?= go

.PHONY: build test race lint vet chaos chaos-recovery bench-smoke bench-compare obs-smoke serve-smoke all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole tree (runtime, transports, facade,
# tools), sized down via -short so it fits an interactive budget; CI runs
# the same target.
race:
	$(GO) test -race -short ./...

# sciotolint enforces the PGAS and split-queue invariants (see DESIGN.md)
# with all eleven analyzers, per-package and whole-program. It exits 2 on
# findings, so this target fails the build when the tree violates an
# invariant without a justified //lint:ignore. Findings are also written
# as a JSON array to sciotolint-findings.json (always, even when empty),
# which CI uploads as an artifact and feeds to its problem matcher.
lint:
	$(GO) run ./tools/sciotolint -o sciotolint-findings.json ./...

vet:
	$(GO) vet ./...

# Fault-tolerance suite under the race detector: the deterministic
# fault-injection wrapper (delay/drop/crash over shm, dsim, and tcp), the
# tcp and ipc crash-containment tests (SIGKILL and SIGSTOP of live
# ranks, including the SIGKILL-then-salvage journal replay over the
# shared mapping), and the work-replay recovery matrix (transports x
# crash-before-steal / crash-mid-steal / crash-with-deferred-deps, all
# seed-pinned; see internal/core/recover_test.go). CI runs the same
# target.
chaos:
	$(GO) test -race -count=1 ./internal/pgas/faulty/
	$(GO) test -race -count=1 -run 'TestCrashContainment|TestInjectedCrashOverTCP|TestHeartbeat|TestOpContext|TestBackoff|TestDialRetry' ./internal/pgas/tcp/
	$(GO) test -race -count=1 -run 'TestCrashContainment|TestInjectedCrashOverIPC|TestRecover' ./internal/pgas/ipc/
	$(GO) test -race -count=1 -run 'TestRecovery' ./internal/core/
	$(GO) test -race -count=1 -run 'TestRunRecover' .
	$(GO) test -race -count=1 -run 'TestServeWorkerCrashRecovers' ./internal/serve/

# Recovery matrix against the shipped binary: sciotod -recover on both
# survivable transports (shm and ipc), worker rank 2 killed at pinned op
# counts via the SCIOTO_FAULT_* environment, all submitted results still
# streamed and a clean drain. CI runs the same target.
chaos-recovery:
	bash scripts/chaos_recovery.sh

# One iteration of the Table 1 benchmarks (shm and simulated cluster).
# This is a smoke test, not a measurement: it proves the benchmark
# harness still builds and runs, so a refactor cannot silently rot the
# perf tooling between full EXPERIMENTS.md regenerations. CI runs the
# same target.
bench-smoke:
	$(GO) test -run=NONE -bench=Table1 -benchtime=1x ./internal/bench/

# Perf regression gates over the checked-in artifacts: `sciotobench -exp
# serve -json` vs BENCH_serve.json (p95 latency and sustained tasks/s,
# +/-15% band via SCIOTO_BENCH_BAND) and `sciotobench -exp transports
# -json` vs BENCH_transport.json (Remote Steal per transport, wide 2x
# band via SCIOTO_BENCH_TRANSPORT_BAND, plus the hard invariant that the
# ipc steal stays below tcp's). CI runs the same target.
bench-compare:
	bash scripts/bench_compare.sh

# End-to-end observability smoke: UTS on shm with the live endpoint and
# trace dumps on, a mid-run /metrics + /healthz scrape, and a 2-rank
# sciototrace merge. CI runs the same target.
obs-smoke:
	bash scripts/obs_smoke.sh

# End-to-end serve-mode smoke: sciotod on shm, 8 concurrent clients
# streaming all results back, 429 backpressure on an over-limit batch,
# and a clean SIGTERM drain (exit 0). CI runs the same target.
serve-smoke:
	bash scripts/serve_smoke.sh
