// Wavefront demonstrates the inter-task dependency extension (the paper's
// announced follow-on to the independent-task model) on a classic
// dynamic-programming pattern: a 2-D recurrence
//
//	V[i,j] = max(V[i-1,j], V[i,j-1]) + w(i,j)
//
// computed over a Global Array in blocks, where block (bi, bj) may only run
// after blocks (bi-1, bj) and (bi, bj-1). Every process registers deferred
// tasks for the blocks it owns (AddDeferred with 1 or 2 dependencies);
// each completed block satisfies its right and down neighbours, so the
// computation sweeps the anti-diagonals with no barriers, and work stealing
// balances the ragged frontier. The result is verified against a serial
// evaluation of the recurrence.
//
// Run with:
//
//	go run ./examples/wavefront
//	go run ./examples/wavefront -procs 9 -n 96 -block 8
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scioto"
	"scioto/internal/ga"
	"scioto/internal/pgas"
)

// weight is the deterministic cell weight.
func weight(i, j int) float64 {
	return float64((i*2654435761+j*40503)%1000) / 100.0
}

func main() {
	procs := flag.Int("procs", 4, "number of simulated processes")
	n := flag.Int("n", 64, "grid dimension")
	block := flag.Int("block", 8, "block edge")
	flag.Parse()
	if *n%*block != 0 {
		log.Fatal("n must be a multiple of block")
	}
	nb := *n / *block

	cfg := scioto.Config{
		Procs:     *procs,
		Transport: scioto.TransportDSim,
		Seed:      13,
		Latency:   3 * time.Microsecond,
	}
	err := scioto.Run(cfg, func(rt *scioto.Runtime) {
		p := rt.Proc()
		V := ga.New(p, *n, *n, *block, *block)

		ndeps := func(bi, bj int) int {
			d := 0
			if bi > 0 {
				d++
			}
			if bj > 0 {
				d++
			}
			return d
		}
		// Deterministic slot numbering: the k-th DEFERRED block (in scan
		// order) owned by a rank lands in pool slot k — block (0,0) is
		// seeded directly and consumes no slot — so every process can
		// compute any block's Dep handle locally.
		depOf := func(bi, bj int) scioto.Dep {
			owner := V.Owner(bi, bj)
			slot := 0
			for x := 0; x < nb; x++ {
				for y := 0; y < nb; y++ {
					if x == bi && y == bj {
						return scioto.Dep{Proc: int32(owner), Slot: int32(slot)}
					}
					if V.Owner(x, y) == owner && ndeps(x, y) > 0 {
						slot++
					}
				}
			}
			panic("unreachable")
		}

		tc := scioto.NewTC(rt, scioto.TCConfig{
			MaxBodySize: 8,
			ChunkSize:   2,
			MaxTasks:    nb*nb + 16,
			MaxDeferred: nb*nb + 16,
		})
		bs := *block
		hdl := tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			bi := int(pgas.GetI32(t.Body()))
			bj := int(pgas.GetI32(t.Body()[4:]))
			iLo, jLo := bi*bs, bj*bs
			// Fetch halo rows/columns from already-computed neighbours.
			top := make([]float64, bs)
			left := make([]float64, bs)
			if bi > 0 {
				V.GetPatch(iLo-1, iLo, jLo, jLo+bs, top)
			}
			if bj > 0 {
				V.GetPatch(iLo, iLo+bs, jLo-1, jLo, left)
			}
			blk := make([]float64, bs*bs)
			for i := 0; i < bs; i++ {
				for j := 0; j < bs; j++ {
					up, lf := 0.0, 0.0
					switch {
					case i > 0:
						up = blk[(i-1)*bs+j]
					case bi > 0:
						up = top[j]
					}
					switch {
					case j > 0:
						lf = blk[i*bs+j-1]
					case bj > 0:
						lf = left[i]
					}
					gi, gj := iLo+i, jLo+j
					v := weight(gi, gj)
					if gi > 0 || gj > 0 {
						m := up
						if gi == 0 || (gj > 0 && lf > m) {
							m = lf
						}
						v += m
					}
					blk[i*bs+j] = v
				}
			}
			V.PutBlock(bi, bj, blk)
			tc.Proc().Compute(time.Duration(bs*bs) * 50 * time.Nanosecond)
			// Unblock the right and down neighbours.
			if bi+1 < nb {
				tc.Satisfy(depOf(bi+1, bj))
			}
			if bj+1 < nb {
				tc.Satisfy(depOf(bi, bj+1))
			}
		})

		// Register this rank's blocks as deferred tasks in scan order (the
		// numbering depOf relies on); (0,0) starts immediately.
		task := scioto.NewTask(hdl, 8)
		for bi := 0; bi < nb; bi++ {
			for bj := 0; bj < nb; bj++ {
				if V.Owner(bi, bj) != rt.Rank() {
					continue
				}
				pgas.PutI32(task.Body(), int32(bi))
				pgas.PutI32(task.Body()[4:], int32(bj))
				if d := ndeps(bi, bj); d > 0 {
					if _, err := tc.AddDeferred(scioto.AffinityHigh, task, d); err != nil {
						log.Fatalf("register block (%d,%d): %v", bi, bj, err)
					}
				} else {
					if err := tc.Add(rt.Rank(), scioto.AffinityHigh, task); err != nil {
						log.Fatalf("seed block (0,0): %v", err)
					}
				}
			}
		}
		p.Barrier() // all deferred registrations visible before processing
		tc.Process()
		g := tc.GlobalStats() // collective

		if rt.Rank() == 0 {
			// Serial reference.
			ref := make([]float64, *n**n)
			for i := 0; i < *n; i++ {
				for j := 0; j < *n; j++ {
					v := weight(i, j)
					if i > 0 || j > 0 {
						m := -1.0
						if i > 0 {
							m = ref[(i-1)**n+j]
						}
						if j > 0 && ref[i**n+j-1] > m {
							m = ref[i**n+j-1]
						}
						v += m
					}
					ref[i**n+j] = v
				}
			}
			got := V.Gather()
			for i := range ref {
				if got[i] != ref[i] {
					log.Fatalf("VERIFICATION FAILED at cell %d: %v vs %v", i, got[i], ref[i])
				}
			}
			fmt.Printf("wavefront over %dx%d blocks on %d procs: all %d blocks in dependency order\n",
				nb, nb, *procs, nb*nb)
			fmt.Printf("deferred launched: %d, steals: %d, corner value V[n-1,n-1] = %.2f\n",
				g.DeferredLaunched, g.StealsOK, got[len(got)-1])
			fmt.Println("verified against serial recurrence")
		}
		p.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
}
