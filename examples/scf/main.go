// SCF drives the miniature closed-shell Self-Consistent Field application
// through the public API, comparing the paper's two dynamic load-balancing
// schemes for the Fock build: the original shared global counter and
// Scioto task collections.
//
// Run with:
//
//	go run ./examples/scf
//	go run ./examples/scf -procs 16 -atoms 32
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scioto"
	"scioto/internal/core"
	"scioto/internal/scf"
)

func main() {
	procs := flag.Int("procs", 8, "number of simulated processes")
	atoms := flag.Int("atoms", 24, "number of centers (even)")
	iters := flag.Int("iters", 20, "max SCF iterations")
	flag.Parse()

	sysCfg := scf.SystemConfig{NAtoms: *atoms, BlockSize: 4, Seed: 7}

	// Serial reference energy.
	serial := scf.NewSystem(sysCfg).SCFSerial(*iters, 1e-8)
	fmt.Printf("serial:  %v\n", serial)

	cfg := scioto.Config{
		Procs:     *procs,
		Transport: scioto.TransportDSim,
		Seed:      3,
		Latency:   3 * time.Microsecond,
	}
	for _, method := range []scf.Method{scf.MethodCounter, scf.MethodScioto} {
		err := scioto.Run(cfg, func(rt *scioto.Runtime) {
			res, err := scf.Run(rt.Proc(), scf.RunConfig{
				Sys:     sysCfg,
				Method:  method,
				MaxIter: *iters,
				TC:      core.Config{ChunkSize: 2},
			})
			if err != nil {
				log.Fatal(err)
			}
			if rt.Rank() == 0 {
				fmt.Printf("%-8s %v  fock-phase %v (virtual, %d procs)\n",
					method.String()+":", res.SCF, res.FockTime.Round(time.Microsecond), *procs)
				if diff := res.SCF.Energy - serial.Energy; diff > 1e-9 || diff < -1e-9 {
					log.Fatalf("energy diverges from serial by %g", diff)
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("parallel energies match the serial reference")
}
