// Quickstart: the smallest complete Scioto program.
//
// Four simulated processes collectively create a task collection, rank 0
// seeds it with tasks (so the initial distribution is maximally
// imbalanced), and work stealing spreads the tasks across all ranks. Each
// task records where it executed in a common local object; after the
// task-parallel phase the per-rank counts are printed.
//
// Run with:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -procs 8 -tasks 2000 -transport dsim
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scioto"
)

func main() {
	procs := flag.Int("procs", 4, "number of simulated processes")
	tasks := flag.Int("tasks", 400, "number of tasks seeded on rank 0")
	transport := flag.String("transport", "shm", "transport: shm or dsim")
	flag.Parse()

	cfg := scioto.Config{
		Procs:     *procs,
		Transport: scioto.Transport(*transport),
		Seed:      42,
		Latency:   3 * time.Microsecond, // remote ops cost something
	}

	err := scioto.Run(cfg, func(rt *scioto.Runtime) {
		// A common local object: each rank's private execution counter,
		// reachable from any task via its portable handle.
		type counter struct{ executed int }
		cloH := rt.RegisterCLO(&counter{})

		tc := scioto.NewTC(rt, scioto.TCConfig{
			MaxBodySize: 8,
			ChunkSize:   5,
			MaxTasks:    1 << 14,
		})
		h := tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			// Simulate a little work, then record where we ran.
			tc.Proc().Compute(50 * time.Microsecond)
			tc.Runtime().CLO(cloH).(*counter).executed++
		})

		// Seed everything on rank 0: dynamic load balancing must spread it.
		if rt.Rank() == 0 {
			task := scioto.NewTask(h, 8)
			for i := 0; i < *tasks; i++ {
				if err := tc.Add(0, scioto.AffinityHigh, task); err != nil {
					log.Fatalf("seed: %v", err)
				}
			}
		}

		tc.Process() // collective MIMD phase; returns on global termination

		// Gather per-rank counts with one-sided communication.
		p := rt.Proc()
		seg := p.AllocWords(rt.NProcs())
		mine := rt.CLO(cloH).(*counter).executed
		p.Store64(0, seg, rt.Rank(), int64(mine))
		p.Barrier()
		g := tc.GlobalStats() // collective: every rank participates
		if rt.Rank() == 0 {
			total := int64(0)
			fmt.Printf("task distribution across %d ranks (all seeded on rank 0):\n", rt.NProcs())
			for r := 0; r < rt.NProcs(); r++ {
				n := p.Load64(0, seg, r)
				total += n
				fmt.Printf("  rank %2d executed %4d tasks %s\n", r, n, bar(n, int64(*tasks)))
			}
			fmt.Printf("total executed: %d (seeded: %d)\n", total, *tasks)
			fmt.Printf("steals: %d successful / %d attempts, %d tasks moved\n",
				g.StealsOK, g.StealAttempts, g.TasksStolen)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

// bar renders a proportional text bar.
func bar(n, total int64) string {
	w := int(n * 40 / total)
	out := make([]byte, w)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
