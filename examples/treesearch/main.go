// Treesearch runs the Unbalanced Tree Search benchmark through the public
// API on both load balancers — Scioto task collections and the MPI-style
// work-stealing baseline — and reports throughput and steal statistics,
// a miniature version of the paper's Figure 7 experiment.
//
// Run with:
//
//	go run ./examples/treesearch
//	go run ./examples/treesearch -procs 16 -depth 15 -seed 20
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scioto"
	"scioto/internal/core"
	"scioto/internal/mpiws"
	"scioto/internal/uts"
)

func main() {
	procs := flag.Int("procs", 8, "number of simulated processes")
	depth := flag.Int("depth", 12, "geometric tree depth cutoff")
	seed := flag.Int("seed", 29, "tree root seed")
	b0 := flag.Float64("b0", 2.0, "expected branching factor")
	flag.Parse()

	tree := uts.Params{Kind: uts.Geometric, RootSeed: *seed, B0: *b0, MaxDepth: *depth}
	seq, err := uts.Sequential(tree, 1<<24)
	if err != nil {
		log.Fatalf("tree too large: %v", err)
	}
	fmt.Printf("tree: %d nodes, %d leaves, depth %d\n", seq.Nodes, seq.Leaves, seq.MaxDepth)

	cfg := scioto.Config{
		Procs:     *procs,
		Transport: scioto.TransportDSim, // virtual time: deterministic timing
		Seed:      5,
		Latency:   3 * time.Microsecond,
	}

	// Scioto task-collection traversal.
	err = scioto.Run(cfg, func(rt *scioto.Runtime) {
		p := rt.Proc()
		p.Barrier()
		t0 := p.Now()
		got, _, err := uts.RunScioto(p, uts.DriverConfig{
			Tree:        tree,
			PerNodeCost: 316 * time.Nanosecond,
			TC:          core.Config{ChunkSize: 10, MaxTasks: 1 << 15},
		})
		if err != nil {
			log.Fatal(err)
		}
		p.Barrier()
		if rt.Rank() == 0 {
			if got != seq {
				log.Fatalf("parallel traversal mismatch: %+v vs %+v", got, seq)
			}
			d := p.Now() - t0
			fmt.Printf("scioto:  %8v  %.2f Mnodes/s (verified)\n", d.Round(time.Microsecond), rate(got.Nodes, d))
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// MPI-style work-stealing traversal.
	err = scioto.Run(cfg, func(rt *scioto.Runtime) {
		p := rt.Proc()
		p.Barrier()
		t0 := p.Now()
		got, polls, err := mpiws.Run(p, mpiws.Config{
			Tree:        tree,
			PerNodeCost: 316 * time.Nanosecond,
			Chunk:       10,
		})
		if err != nil {
			log.Fatal(err)
		}
		p.Barrier()
		if rt.Rank() == 0 {
			if got != seq {
				log.Fatalf("mpi-ws traversal mismatch: %+v vs %+v", got, seq)
			}
			d := p.Now() - t0
			fmt.Printf("mpi-ws:  %8v  %.2f Mnodes/s (rank 0 polled %d times)\n",
				d.Round(time.Microsecond), rate(got.Nodes, d), polls)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
}

func rate(nodes int64, d time.Duration) float64 {
	return float64(nodes) / d.Seconds() / 1e6
}
