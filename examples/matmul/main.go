// Matmul is the paper's Section 4 example program, translated to Go:
// task-parallel blocked matrix-matrix multiplication over Global Arrays.
//
// All processes collectively create distributed arrays A, B, and C, a task
// collection, and register the multiply callback. Each process then seeds
// one task per (i, j, k) block triple that it owns (the get_owner check in
// the paper's listing), with high affinity so tasks run where C's blocks
// live unless load balancing moves them. Every task fetches its A and B
// blocks with one-sided gets, multiplies, and atomically accumulates into
// C. The result is verified against a dense reference multiply.
//
// Run with:
//
//	go run ./examples/matmul
//	go run ./examples/matmul -procs 8 -n 96 -block 8 -transport dsim
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scioto"
	"scioto/internal/ga"
	"scioto/internal/linalg"
	"scioto/internal/pgas"
)

// mmTask is the paper's task body: portable references to the arrays are
// implicit (the arrays are program globals under GA; here they are
// captured by the callback closure), and the body carries the block
// indices to multiply.
type mmTask struct {
	i, j, k int32
}

const mmBodyBytes = 12

func (m mmTask) encode(b []byte) {
	pgas.PutI32(b[0:], m.i)
	pgas.PutI32(b[4:], m.j)
	pgas.PutI32(b[8:], m.k)
}

func decodeMM(b []byte) mmTask {
	return mmTask{i: pgas.GetI32(b[0:]), j: pgas.GetI32(b[4:]), k: pgas.GetI32(b[8:])}
}

func main() {
	procs := flag.Int("procs", 4, "number of simulated processes")
	n := flag.Int("n", 64, "matrix dimension")
	block := flag.Int("block", 8, "block edge")
	transport := flag.String("transport", "shm", "transport: shm or dsim")
	flag.Parse()

	cfg := scioto.Config{
		Procs:     *procs,
		Transport: scioto.Transport(*transport),
		Seed:      7,
		Latency:   3 * time.Microsecond,
	}
	err := scioto.Run(cfg, func(rt *scioto.Runtime) {
		p := rt.Proc()
		// Distributed global arrays, as in the paper's listing.
		A := ga.New(p, *n, *n, *block, *block)
		B := ga.New(p, *n, *n, *block, *block)
		C := ga.New(p, *n, *n, *block, *block)
		nb := A.NumBlockRows()

		// Fill A and B deterministically (each process fills its blocks).
		if rt.Rank() == 0 {
			a := make([]float64, *n**n)
			b := make([]float64, *n**n)
			for x := range a {
				a[x] = float64(x%17) - 8
				b[x] = float64(x%13) - 6
			}
			A.ScatterFrom(a)
			B.ScatterFrom(b)
		}
		p.Barrier()

		tc := scioto.NewTC(rt, scioto.TCConfig{
			MaxBodySize: mmBodyBytes,
			ChunkSize:   4,
			MaxTasks:    nb*nb*nb + 16,
		})
		bs := *block
		hdl := tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			m := decodeMM(t.Body())
			abuf := make([]float64, bs*bs)
			bbuf := make([]float64, bs*bs)
			cbuf := make([]float64, bs*bs)
			ar, ac := A.GetBlock(int(m.i), int(m.k), abuf)
			_, bc := B.GetBlock(int(m.k), int(m.j), bbuf)
			linalg.GemmBlock(cbuf, abuf, bbuf, ar, ac, bc)
			C.AccBlock(int(m.i), int(m.j), cbuf)
		})

		// Seed: each process creates only the tasks for triples it owns
		// (the get_owner(i,j,k) == me test in the paper).
		task := scioto.NewTask(hdl, mmBodyBytes)
		seeded := 0
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				for k := 0; k < nb; k++ {
					if C.Owner(i, j) != rt.Rank() {
						continue
					}
					mmTask{i: int32(i), j: int32(j), k: int32(k)}.encode(task.Body())
					if err := tc.Add(rt.Rank(), scioto.AffinityHigh, task); err != nil {
						log.Fatalf("seed: %v", err)
					}
					seeded++
				}
			}
		}

		tc.Process()

		// Verify on rank 0 against a dense reference.
		if rt.Rank() == 0 {
			a := linalg.FromSlice(*n, *n, A.Gather())
			b := linalg.FromSlice(*n, *n, B.Gather())
			got := linalg.FromSlice(*n, *n, C.Gather())
			want := linalg.MatMul(a, b)
			diff := linalg.MaxAbsDiff(got, want)
			g := tc.Stats()
			fmt.Printf("C = A x B over %dx%d blocks of %dx%d on %d procs\n", nb, nb, bs, bs, *procs)
			fmt.Printf("rank 0 seeded %d of %d tasks, executed %d locally\n", seeded, nb*nb*nb, g.TasksExecuted)
			fmt.Printf("max |C - reference| = %g\n", diff)
			if diff > 1e-9 {
				log.Fatal("VERIFICATION FAILED")
			}
			fmt.Println("verified OK")
		}
		p.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
}
