package scioto_test

import (
	"fmt"
	"time"

	"scioto"
	"scioto/internal/pgas"
)

// The smallest complete program: four processes, one task collection, work
// seeded on rank 0 and spread by stealing.
func ExampleRun() {
	cfg := scioto.Config{Procs: 4, Transport: scioto.TransportDSim, Seed: 42}
	err := scioto.Run(cfg, func(rt *scioto.Runtime) {
		tc := scioto.NewTC(rt, scioto.TCConfig{MaxBodySize: 8, ChunkSize: 5})
		h := tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			tc.Proc().Compute(20 * time.Microsecond)
		})
		if rt.Rank() == 0 {
			task := scioto.NewTask(h, 8)
			for i := 0; i < 100; i++ {
				if err := tc.Add(0, scioto.AffinityHigh, task); err != nil {
					panic(err)
				}
			}
		}
		tc.Process()
		g := tc.GlobalStats()
		if rt.Rank() == 0 {
			fmt.Printf("executed %d tasks on %d processes\n", g.TasksExecuted, rt.NProcs())
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: executed 100 tasks on 4 processes
}

// Tasks spawn subtasks: a binary tree of depth 4 unfolds dynamically and
// termination is detected once the whole tree has been processed.
func ExampleTC_Add_dynamicSpawning() {
	cfg := scioto.Config{Procs: 3, Transport: scioto.TransportDSim, Seed: 7}
	err := scioto.Run(cfg, func(rt *scioto.Runtime) {
		tc := scioto.NewTC(rt, scioto.TCConfig{MaxBodySize: 8})
		var h scioto.Handle
		h = tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			depth := pgas.GetI64(t.Body())
			if depth >= 4 {
				return
			}
			child := scioto.NewTask(h, 8)
			pgas.PutI64(child.Body(), depth+1)
			for i := 0; i < 2; i++ {
				if err := tc.Add(tc.Runtime().Rank(), scioto.AffinityHigh, child); err != nil {
					panic(err)
				}
			}
		})
		if rt.Rank() == 0 {
			root := scioto.NewTask(h, 8)
			if err := tc.Add(0, scioto.AffinityHigh, root); err != nil {
				panic(err)
			}
		}
		tc.Process()
		g := tc.GlobalStats()
		if rt.Rank() == 0 {
			fmt.Printf("tree of %d nodes processed\n", g.TasksExecuted)
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: tree of 31 nodes processed
}

// Common local objects give tasks access to a per-process instance of a
// registered object wherever they run — the mechanism for accumulating
// node-local results.
func ExampleRuntime_RegisterCLO() {
	type tally struct{ n int }
	cfg := scioto.Config{Procs: 2, Transport: scioto.TransportDSim, Seed: 1}
	err := scioto.Run(cfg, func(rt *scioto.Runtime) {
		cloH := rt.RegisterCLO(&tally{})
		tc := scioto.NewTC(rt, scioto.TCConfig{MaxBodySize: 8})
		h := tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			// Wherever this task executes, the handle resolves to that
			// process's own tally.
			tc.Runtime().CLO(cloH).(*tally).n++
		})
		task := scioto.NewTask(h, 8)
		for i := 0; i < 5; i++ {
			if err := tc.Add(rt.Rank(), scioto.AffinityHigh, task); err != nil {
				panic(err)
			}
		}
		tc.Process()
		local := rt.CLO(cloH).(*tally).n
		p := rt.Proc()
		seg := p.AllocWords(1)
		p.FetchAdd64(0, seg, 0, int64(local))
		p.Barrier()
		if rt.Rank() == 0 {
			fmt.Printf("total across CLOs: %d\n", p.Load64(0, seg, 0))
		}
	})
	if err != nil {
		panic(err)
	}
	// Output: total across CLOs: 10
}

// Deferred tasks run only after their dependencies are satisfied: a join
// task waits for three precursors.
func ExampleTC_AddDeferred() {
	cfg := scioto.Config{Procs: 2, Transport: scioto.TransportDSim, Seed: 3}
	err := scioto.Run(cfg, func(rt *scioto.Runtime) {
		tc := scioto.NewTC(rt, scioto.TCConfig{
			MaxBodySize: scioto.DepBytes,
			MaxDeferred: 4,
		})
		joinH := tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			fmt.Println("join ran after all precursors")
		})
		preH := tc.Register(func(tc *scioto.TC, t *scioto.Task) {
			tc.Satisfy(scioto.DecodeDep(t.Body()))
		})
		if rt.Rank() == 0 {
			join := scioto.NewTask(joinH, scioto.DepBytes)
			dep, err := tc.AddDeferred(scioto.AffinityHigh, join, 3)
			if err != nil {
				panic(err)
			}
			pre := scioto.NewTask(preH, scioto.DepBytes)
			scioto.EncodeDep(pre.Body(), dep)
			for i := 0; i < 3; i++ {
				if err := tc.Add(i%2, scioto.AffinityLow, pre); err != nil {
					panic(err)
				}
			}
		}
		tc.Process()
	})
	if err != nil {
		panic(err)
	}
	// Output: join ran after all precursors
}
